package sweep

import (
	"bytes"
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// jsonID extracts the cell ID from one shard NDJSON line.
func jsonID(t *testing.T, line []byte) string {
	t.Helper()
	var rec struct {
		ID string `json:"id"`
	}
	if err := json.Unmarshal(line, &rec); err != nil {
		t.Fatalf("parsing shard line %q: %v", line, err)
	}
	return rec.ID
}

func testGrid() Grid {
	return Grid{
		Systems:       []string{"t2"},
		CkptIntervals: []float64{0, 24},
		Spares:        []int{-1, 1},
		Accuracies:    []float64{0, 0.5},
		Seeds:         []int64{1, 2},
	}
}

func testParams() Params {
	return Params{
		HorizonHours:        500,
		Crews:               4,
		LeadTimeHours:       72,
		AlarmWindowHours:    24,
		CheckpointCostHours: 0.1,
		RestartCostHours:    0.2,
		LogSeed:             7,
		MinCount:            10,
	}
}

func TestGridEnumeration(t *testing.T) {
	g := testGrid()
	cells := g.Cells()
	if len(cells) != g.Size() || g.Size() != 16 {
		t.Fatalf("got %d cells, Size()=%d, want 16", len(cells), g.Size())
	}
	seen := make(map[string]bool)
	for i, c := range cells {
		if c.Index != i {
			t.Errorf("cell %d has Index %d", i, c.Index)
		}
		if seen[c.ID] {
			t.Errorf("duplicate cell ID %s", c.ID)
		}
		seen[c.ID] = true
	}
	// Seeds vary fastest, systems slowest.
	if cells[0].ID != "t2/ck0/sp-1/acc0/seed1" {
		t.Errorf("first cell ID = %s", cells[0].ID)
	}
	if cells[1].Seed != 2 || cells[2].Accuracy != 0.5 {
		t.Errorf("enumeration order wrong: %+v %+v", cells[1], cells[2])
	}
}

func TestGridValidate(t *testing.T) {
	cases := []Grid{
		{},
		{Systems: []string{"t2"}, CkptIntervals: []float64{-1}, Spares: []int{0}, Accuracies: []float64{0}, Seeds: []int64{1}},
		{Systems: []string{"t2"}, CkptIntervals: []float64{0}, Spares: []int{-2}, Accuracies: []float64{0}, Seeds: []int64{1}},
		{Systems: []string{"t2"}, CkptIntervals: []float64{0}, Spares: []int{0}, Accuracies: []float64{1}, Seeds: []int64{1}},
	}
	for i, g := range cases {
		if err := g.Validate(); err == nil {
			t.Errorf("case %d: invalid grid passed validation", i)
		}
	}
	if err := testGrid().Validate(); err != nil {
		t.Errorf("valid grid rejected: %v", err)
	}
}

func TestEvaluatorDeterministic(t *testing.T) {
	ev, err := NewEvaluator(testParams(), []string{"t2"})
	if err != nil {
		t.Fatal(err)
	}
	cell := testGrid().Cells()[5]
	a, err := ev.Run(cell)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ev.Run(cell)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("same cell evaluated twice diverged:\n%+v\n%+v", a, b)
	}
	if !(a.Availability > 0 && a.Availability <= 1) {
		t.Errorf("availability %v out of range", a.Availability)
	}
	if !(a.CkptEfficiency > 0 && a.CkptEfficiency < 1) {
		t.Errorf("checkpoint efficiency %v out of range", a.CkptEfficiency)
	}
	if a.GoodputFraction != a.Availability*a.CkptEfficiency {
		t.Errorf("goodput %v != availability*efficiency", a.GoodputFraction)
	}
}

func TestEvaluatorRejectsUnknownSystem(t *testing.T) {
	if _, err := NewEvaluator(testParams(), []string{"cray"}); err == nil {
		t.Fatal("unknown system accepted")
	}
	ev, err := NewEvaluator(testParams(), []string{"t2"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ev.Run(Cell{ID: "x", System: "t3"}); err == nil {
		t.Fatal("unfitted system accepted")
	}
}

func runSweep(t *testing.T, dir string, parallelism int, resume bool) []byte {
	t.Helper()
	report, err := Run(context.Background(), RunnerConfig{
		Grid: testGrid(), Params: testParams(),
		OutDir: dir, Parallelism: parallelism, Resume: resume,
	})
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(report)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func TestSweepReportDeterministicAcrossParallelism(t *testing.T) {
	one := runSweep(t, t.TempDir(), 1, false)
	four := runSweep(t, t.TempDir(), 4, false)
	if !bytes.Equal(one, four) {
		t.Fatal("report bytes differ between parallelism 1 and 4")
	}
	if n := bytes.Count(one, []byte("\n")); n != testGrid().Size() {
		t.Fatalf("report has %d lines, want %d", n, testGrid().Size())
	}
}

func TestSweepRefusesDirtyDirWithoutResume(t *testing.T) {
	dir := t.TempDir()
	runSweep(t, dir, 2, false)
	_, err := Run(context.Background(), RunnerConfig{
		Grid: testGrid(), Params: testParams(), OutDir: dir, Parallelism: 2,
	})
	if err == nil || !strings.Contains(err.Error(), "resume") {
		t.Fatalf("re-run without resume: got %v, want refusal mentioning resume", err)
	}
}

// TestSweepResumeAfterTornKill simulates a SIGKILL that tore the
// trailing lines of both the manifest and a shard: the resumed sweep
// must recompute exactly the un-manifested cells and merge to a report
// byte-identical to an uninterrupted run.
func TestSweepResumeAfterTornKill(t *testing.T) {
	want := runSweep(t, t.TempDir(), 2, false)

	dir := t.TempDir()
	runSweep(t, dir, 2, false)
	if err := os.Remove(filepath.Join(dir, ReportName)); err != nil {
		t.Fatal(err)
	}
	// A kill can only tear the protocol in write order: a shard's final
	// line may be partial (its manifest line then never happened), and
	// the manifest's own final line may be partial. Reconstruct that
	// state: tear the last line of shard 0, then drop the IDs of the
	// shard's last two lines from the manifest, leaving the second as a
	// torn fragment (its shard line complete but unmanifested — the
	// "killed between the two writes" window).
	shards, err := filepath.Glob(filepath.Join(dir, shardPattern))
	if err != nil || len(shards) == 0 {
		t.Fatalf("no shards: %v", err)
	}
	sdata, err := os.ReadFile(shards[0])
	if err != nil {
		t.Fatal(err)
	}
	slines := completeLines(sdata)
	if len(slines) < 2 {
		t.Fatalf("shard too short: %d lines", len(slines))
	}
	tornID := jsonID(t, slines[len(slines)-1])
	orphanID := jsonID(t, slines[len(slines)-2])
	if err := os.WriteFile(shards[0], sdata[:len(sdata)-10], 0o644); err != nil {
		t.Fatal(err)
	}
	manifestPath := filepath.Join(dir, ManifestName)
	data, err := os.ReadFile(manifestPath)
	if err != nil {
		t.Fatal(err)
	}
	var torn []byte
	for _, line := range completeLines(data) {
		if string(line) == tornID || string(line) == orphanID {
			continue
		}
		torn = append(torn, line...)
		torn = append(torn, '\n')
	}
	torn = append(torn, orphanID[:5]...) // manifest write itself was torn
	if err := os.WriteFile(manifestPath, torn, 0o644); err != nil {
		t.Fatal(err)
	}

	got := runSweep(t, dir, 3, true) // different worker count on purpose
	if !bytes.Equal(got, want) {
		t.Fatal("resumed report differs from uninterrupted run")
	}
}

func TestMergeFailsOnIncompleteSweep(t *testing.T) {
	dir := t.TempDir()
	runSweep(t, dir, 1, false)
	extra := testGrid()
	extra.Seeds = append(extra.Seeds, 99)
	if _, err := Merge(dir, extra.Cells()); err == nil {
		t.Fatal("merge of incomplete sweep succeeded")
	}
}

func TestCompleteLines(t *testing.T) {
	got := completeLines([]byte("a\nbb\n\nccc"))
	if len(got) != 2 || string(got[0]) != "a" || string(got[1]) != "bb" {
		t.Fatalf("completeLines = %q", got)
	}
	if n := len(completeLines(nil)); n != 0 {
		t.Fatalf("completeLines(nil) = %d lines", n)
	}
}
