package sweep

import (
	"fmt"

	"repro/internal/cli"
	"repro/internal/failures"
	"repro/internal/remediate"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/spares"
	"repro/internal/synth"
	"repro/internal/system"
)

// Params are the sweep-wide knobs shared by every cell: the simulation
// horizon and crew pool, the spare-part lead time, the prediction alarm
// window, and the checkpoint cost model.
type Params struct {
	HorizonHours float64
	// Crews bounds simultaneous repairs; 0 means unlimited.
	Crews int
	// LeadTimeHours is the spare-part delivery latency of finite-stock
	// cells.
	LeadTimeHours float64
	// AlarmWindowHours is how long a prediction alarm stays up
	// (ProactiveRecovery.WindowHours) in accuracy > 0 cells.
	AlarmWindowHours float64
	// CheckpointCostHours and RestartCostHours parameterize the
	// Young/Daly checkpoint model.
	CheckpointCostHours float64
	RestartCostHours    float64
	// BatchWindowHours is the maintenance-window cadence of "batch"
	// policy cells; 0 selects the default weekly window.
	BatchWindowHours float64
	// LogSeed seeds the synthetic failure log each system's processes
	// are fitted from.
	LogSeed int64
	// MinCount is the fitting threshold per category (ProcessesFromLog).
	MinCount int
}

// Validate checks the shared parameters.
func (p Params) Validate() error {
	if !(p.HorizonHours > 0) {
		return fmt.Errorf("sweep: horizon must be positive, got %v", p.HorizonHours)
	}
	if p.Crews < 0 {
		return fmt.Errorf("sweep: negative crew count %d", p.Crews)
	}
	if !(p.LeadTimeHours > 0) {
		return fmt.Errorf("sweep: lead time must be positive, got %v", p.LeadTimeHours)
	}
	if !(p.AlarmWindowHours > 0) {
		return fmt.Errorf("sweep: alarm window must be positive, got %v", p.AlarmWindowHours)
	}
	if !(p.CheckpointCostHours > 0) {
		return fmt.Errorf("sweep: checkpoint cost must be positive, got %v", p.CheckpointCostHours)
	}
	if p.RestartCostHours < 0 {
		return fmt.Errorf("sweep: negative restart cost %v", p.RestartCostHours)
	}
	if p.BatchWindowHours < 0 {
		return fmt.Errorf("sweep: negative batch window %v", p.BatchWindowHours)
	}
	return nil
}

// batchWindow is the effective "batch" policy cadence: the configured
// window, defaulting to one week.
func (p Params) batchWindow() float64 {
	if p.BatchWindowHours > 0 {
		return p.BatchWindowHours
	}
	return 168
}

// Result is one evaluated cell: the scenario identity plus the headline
// operational numbers. Field order is the NDJSON column order.
type Result struct {
	Cell
	Availability      float64 `json:"availability"`
	NodeHoursLost     float64 `json:"node_hours_lost"`
	Failures          int     `json:"failures"`
	MeanRepairWait    float64 `json:"mean_repair_wait_hours"`
	MTBFHours         float64 `json:"mtbf_hours"`
	EffectiveInterval float64 `json:"effective_ckpt_interval_hours"`
	CkptEfficiency    float64 `json:"ckpt_efficiency"`
	// GoodputFraction is availability times checkpoint efficiency: the
	// fraction of the fleet-hour budget doing useful work.
	GoodputFraction float64 `json:"goodput_fraction"`
	// Remediations, Averted, and SparesConsumed are populated by policy
	// cells (Policy != "none"): completed remediation cycles, predicted
	// incidents absorbed by proactive drains, and parts consumed.
	Remediations   int `json:"remediations"`
	Averted        int `json:"averted"`
	SparesConsumed int `json:"spares_consumed"`
}

type systemModel struct {
	procs   []sim.FailureProcess
	machine system.Machine
}

// Evaluator evaluates cells against per-system fitted failure
// processes. Building one fits each referenced system's processes once;
// Run is safe for concurrent use because the fitted models are
// read-only and every mutable piece of simulation state is per-call.
type Evaluator struct {
	params  Params
	systems map[string]systemModel
}

// NewEvaluator fits the failure processes of every system the grid
// references and captures the shared parameters.
func NewEvaluator(p Params, systemNames []string) (*Evaluator, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	ev := &Evaluator{params: p, systems: make(map[string]systemModel)}
	for _, name := range systemNames {
		if _, ok := ev.systems[name]; ok {
			continue
		}
		sys, err := cli.ParseSystem(name)
		if err != nil {
			return nil, fmt.Errorf("sweep: %w", err)
		}
		log, err := synth.Generate(profileFor(sys), p.LogSeed)
		if err != nil {
			return nil, fmt.Errorf("sweep: generating %s log: %w", name, err)
		}
		procs, err := sim.ProcessesFromLog(log, p.MinCount)
		if err != nil {
			return nil, fmt.Errorf("sweep: fitting %s processes: %w", name, err)
		}
		machine, err := system.ForSystem(sys)
		if err != nil {
			return nil, fmt.Errorf("sweep: %w", err)
		}
		ev.systems[name] = systemModel{procs: procs, machine: machine}
	}
	return ev, nil
}

func profileFor(sys failures.System) *synth.Profile {
	if sys == failures.Tsubame3 {
		return synth.Tsubame3Profile()
	}
	return synth.Tsubame2Profile()
}

// Run evaluates one cell. Results are deterministic in the cell alone:
// the same cell produces the same Result bytes on every run, which is
// what makes resumed sweeps merge byte-identically. Cells with a
// remediation policy run the closed-loop engine; "none" cells run the
// plain repair simulator.
func (e *Evaluator) Run(c Cell) (Result, error) {
	m, ok := e.systems[c.System]
	if !ok {
		return Result{}, fmt.Errorf("sweep: cell %s references unfitted system %q", c.ID, c.System)
	}
	if c.Policy != "" && c.Policy != "none" {
		return e.runPolicy(c, m)
	}
	cfg := sim.Config{
		Nodes:        m.machine.Nodes,
		NodesPerRack: m.machine.NodesPerRack,
		GPUsPerNode:  m.machine.Node.NumGPUs,
		HorizonHours: e.params.HorizonHours,
		Processes:    m.procs,
		Crews:        e.params.Crews,
		Seed:         c.Seed,
	}
	if c.Spares >= 0 {
		parts, err := spares.NewFixedStock(c.Spares, e.params.LeadTimeHours)
		if err != nil {
			return Result{}, fmt.Errorf("sweep: cell %s: %w", c.ID, err)
		}
		cfg.Parts = parts
	}
	if c.Accuracy > 0 {
		cfg.Proactive = &sim.ProactiveRecovery{
			WindowHours: e.params.AlarmWindowHours,
			Factor:      1 - c.Accuracy,
		}
	}
	res, err := sim.Run(cfg)
	if err != nil {
		return Result{}, fmt.Errorf("sweep: cell %s: %w", c.ID, err)
	}
	mtbf := e.params.HorizonHours
	if res.Failures > 0 {
		mtbf = e.params.HorizonHours / float64(res.Failures)
	}
	model := sched.CheckpointModel{
		CheckpointCostHours: e.params.CheckpointCostHours,
		RestartCostHours:    e.params.RestartCostHours,
		MTBFHours:           mtbf,
	}
	tau := c.CkptInterval
	if tau == 0 {
		tau = model.OptimalInterval()
	}
	eff, err := model.Efficiency(tau)
	if err != nil {
		return Result{}, fmt.Errorf("sweep: cell %s: %w", c.ID, err)
	}
	return Result{
		Cell:              c,
		Availability:      res.Availability,
		NodeHoursLost:     res.NodeHoursLost,
		Failures:          res.Failures,
		MeanRepairWait:    res.MeanRepairWait,
		MTBFHours:         mtbf,
		EffectiveInterval: tau,
		CkptEfficiency:    eff,
		GoodputFraction:   res.Availability * eff,
	}, nil
}

// runPolicy evaluates a remediation-policy cell with the closed-loop
// engine on the same fitted processes, spares, and accuracy knobs as
// the plain cells, so policy and no-policy rows are comparable within a
// grid.
func (e *Evaluator) runPolicy(c Cell, m systemModel) (Result, error) {
	policy, err := remediate.PolicyByName(c.Policy, e.params.batchWindow())
	if err != nil {
		return Result{}, fmt.Errorf("sweep: cell %s: %w", c.ID, err)
	}
	cfg := remediate.Config{
		Nodes:        m.machine.Nodes,
		NodesPerRack: m.machine.NodesPerRack,
		HorizonHours: e.params.HorizonHours,
		Processes:    m.procs,
		Crews:        e.params.Crews,
		Policy:       policy,
		Steps:        remediate.DefaultSteps(),
		Seed:         c.Seed,
	}
	if c.Accuracy > 0 {
		// The alarm window doubles as the prediction lead: how far ahead
		// of a failure the oracle raises its alarm.
		cfg.Predictor = remediate.Predictor{
			Accuracy:      c.Accuracy,
			LeadTimeHours: e.params.AlarmWindowHours,
		}
	}
	if c.Spares >= 0 {
		parts, err := spares.NewFixedStock(c.Spares, e.params.LeadTimeHours)
		if err != nil {
			return Result{}, fmt.Errorf("sweep: cell %s: %w", c.ID, err)
		}
		cfg.Parts = parts
	}
	res, err := remediate.Run(cfg)
	if err != nil {
		return Result{}, fmt.Errorf("sweep: cell %s: %w", c.ID, err)
	}
	mtbf := e.params.HorizonHours
	if res.Failures > 0 {
		mtbf = e.params.HorizonHours / float64(res.Failures)
	}
	model := sched.CheckpointModel{
		CheckpointCostHours: e.params.CheckpointCostHours,
		RestartCostHours:    e.params.RestartCostHours,
		MTBFHours:           mtbf,
	}
	tau := c.CkptInterval
	if tau == 0 {
		tau = model.OptimalInterval()
	}
	eff, err := model.Efficiency(tau)
	if err != nil {
		return Result{}, fmt.Errorf("sweep: cell %s: %w", c.ID, err)
	}
	return Result{
		Cell:              c,
		Availability:      res.Availability,
		NodeHoursLost:     res.NodeHoursLost,
		Failures:          res.Failures,
		MeanRepairWait:    res.MeanRemediationHours,
		MTBFHours:         mtbf,
		EffectiveInterval: tau,
		CkptEfficiency:    eff,
		GoodputFraction:   res.Availability * eff,
		Remediations:      res.Remediations,
		Averted:           res.Averted,
		SparesConsumed:    res.SparesConsumed,
	}, nil
}
