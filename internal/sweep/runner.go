package sweep

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"repro/internal/obs"
	"repro/internal/parallel"
)

// On-disk layout of a sweep directory. Shard files hold one NDJSON
// Result per completed cell (one file per worker, append-only); the
// manifest holds one completed cell ID per line and is the source of
// truth for resume; the report is the deterministic merge of the
// shards in cell-index order.
const (
	ManifestName = "cells.manifest"
	ReportName   = "SWEEP_report.ndjson"
	shardPattern = "shard-*.ndjson"
)

// RunnerConfig parameterizes one sweep execution.
type RunnerConfig struct {
	Grid   Grid
	Params Params
	// OutDir is the sweep directory (created if missing).
	OutDir string
	// Parallelism bounds concurrent workers; <= 0 uses
	// parallel.DefaultParallelism.
	Parallelism int
	// Resume skips cells recorded in an existing manifest. Without it,
	// Run refuses a directory that already has one, so two sweeps cannot
	// silently interleave results.
	Resume bool
}

// Run executes the sweep and returns the merged report path.
//
// Crash safety is a two-file protocol: a worker writes a cell's result
// line to its shard (one unbuffered write) before appending the cell ID
// to the shared manifest. A kill between the two leaves an orphan shard
// line whose cell is recomputed on resume; the duplicate is harmless
// because results are deterministic and the merge dedupes by cell ID. A
// torn trailing line in either file (no final newline) is discarded on
// read. The merged report is therefore byte-identical whether the sweep
// ran straight through or was killed and resumed, at any parallelism.
func Run(ctx context.Context, rc RunnerConfig) (string, error) {
	defer obs.StartSpan("sweep/run").End()
	if err := rc.Grid.Validate(); err != nil {
		return "", err
	}
	ev, err := NewEvaluator(rc.Params, rc.Grid.Systems)
	if err != nil {
		return "", err
	}
	if err := os.MkdirAll(rc.OutDir, 0o755); err != nil {
		return "", fmt.Errorf("sweep: %w", err)
	}
	manifestPath := filepath.Join(rc.OutDir, ManifestName)
	if _, err := os.Stat(manifestPath); err == nil && !rc.Resume {
		return "", fmt.Errorf("sweep: %s exists; pass resume to continue it or choose a fresh directory", manifestPath)
	}
	done, err := loadManifest(manifestPath)
	if err != nil {
		return "", err
	}

	cells := rc.Grid.Cells()
	todo := make([]Cell, 0, len(cells))
	for _, c := range cells {
		if !done[c.ID] {
			todo = append(todo, c)
		}
	}
	obs.Add("sweep.cells.total", int64(len(cells)))
	obs.Add("sweep.cells.skipped", int64(len(cells)-len(todo)))

	if len(todo) > 0 {
		if err := runCells(ctx, rc, ev, manifestPath, todo); err != nil {
			return "", err
		}
	}
	return Merge(rc.OutDir, cells)
}

// runCells fans todo out over shard-owning workers.
func runCells(ctx context.Context, rc RunnerConfig, ev *Evaluator, manifestPath string, todo []Cell) error {
	workers := parallel.Width(rc.Parallelism, len(todo))
	manifest, err := openAppendSane(manifestPath)
	if err != nil {
		return err
	}
	defer manifest.Close()
	var manifestMu sync.Mutex

	ranges := parallel.Shards(len(todo), workers)
	tasks := make([]func(context.Context) error, 0, len(ranges))
	for w, rg := range ranges {
		w, rg := w, rg
		tasks = append(tasks, func(ctx context.Context) error {
			shard, err := openShard(rc.OutDir, w)
			if err != nil {
				return err
			}
			defer shard.Close()
			for _, cell := range todo[rg.Lo:rg.Hi] {
				if err := ctx.Err(); err != nil {
					return err
				}
				if err := runCell(ev, cell, shard, manifest, &manifestMu); err != nil {
					return err
				}
			}
			return nil
		})
	}
	return parallel.Do(ctx, workers, tasks...)
}

func runCell(ev *Evaluator, cell Cell, shard, manifest *os.File, manifestMu *sync.Mutex) error {
	span := obs.StartSpan("sweep/cell")
	res, err := ev.Run(cell)
	span.End()
	if err != nil {
		return err
	}
	line, err := json.Marshal(res)
	if err != nil {
		return fmt.Errorf("sweep: cell %s: %w", cell.ID, err)
	}
	// Result first, manifest second: a cell is only "done" once its
	// bytes are on disk. Both writes are single unbuffered syscalls.
	if _, err := shard.Write(append(line, '\n')); err != nil {
		return fmt.Errorf("sweep: cell %s: %w", cell.ID, err)
	}
	manifestMu.Lock()
	_, err = manifest.WriteString(cell.ID + "\n")
	manifestMu.Unlock()
	if err != nil {
		return fmt.Errorf("sweep: cell %s: %w", cell.ID, err)
	}
	obs.Add("sweep.cells.done", 1)
	return nil
}

// openShard opens worker w's shard for appending. Shard numbering is
// per-invocation; a resumed sweep with a different worker count simply
// appends to however many shards it uses, and the merge reads them all.
func openShard(dir string, w int) (*os.File, error) {
	return openAppendSane(filepath.Join(dir, fmt.Sprintf("shard-%04d.ndjson", w)))
}

// openAppendSane opens path for appending after truncating any torn
// trailing fragment a killed run left behind — otherwise the first
// appended line would concatenate onto the fragment and corrupt both
// records. Callers own the file exclusively, so read-truncate-append is
// race-free.
func openAppendSane(path string) (*os.File, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("sweep: %w", err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("sweep: %w", err)
	}
	keep := int64(bytes.LastIndexByte(data, '\n') + 1)
	if err := f.Truncate(keep); err != nil {
		f.Close()
		return nil, fmt.Errorf("sweep: %w", err)
	}
	if _, err := f.Seek(keep, 0); err != nil {
		f.Close()
		return nil, fmt.Errorf("sweep: %w", err)
	}
	return f, nil
}

// loadManifest reads the completed-cell set, tolerating a torn trailing
// line from a killed run.
func loadManifest(path string) (map[string]bool, error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return map[string]bool{}, nil
	}
	if err != nil {
		return nil, fmt.Errorf("sweep: %w", err)
	}
	done := make(map[string]bool)
	for _, line := range completeLines(data) {
		done[string(line)] = true
	}
	return done, nil
}

// completeLines splits NDJSON data into newline-terminated lines,
// dropping a torn final fragment (and empty lines).
func completeLines(data []byte) [][]byte {
	var lines [][]byte
	for {
		i := bytes.IndexByte(data, '\n')
		if i < 0 {
			return lines // no trailing newline: torn fragment, drop it
		}
		if i > 0 {
			lines = append(lines, data[:i])
		}
		data = data[i+1:]
	}
}

// Merge reads every shard in the sweep directory and writes the final
// report: one Result line per cell, in cell-index order, re-marshalled
// from the parsed records so the bytes do not depend on which run or
// worker produced each line. It fails if any cell is missing.
func Merge(dir string, cells []Cell) (string, error) {
	defer obs.StartSpan("sweep/merge").End()
	shards, err := filepath.Glob(filepath.Join(dir, shardPattern))
	if err != nil {
		return "", fmt.Errorf("sweep: %w", err)
	}
	sort.Strings(shards)
	byID := make(map[string]Result, len(cells))
	for _, path := range shards {
		data, err := os.ReadFile(path)
		if err != nil {
			return "", fmt.Errorf("sweep: %w", err)
		}
		for n, line := range completeLines(data) {
			var res Result
			if err := json.Unmarshal(line, &res); err != nil {
				return "", fmt.Errorf("sweep: %s line %d: %w", path, n+1, err)
			}
			byID[res.ID] = res // duplicates are identical by determinism
		}
	}
	var buf bytes.Buffer
	for _, c := range cells {
		res, ok := byID[c.ID]
		if !ok {
			return "", fmt.Errorf("sweep: cell %s missing from shards; sweep incomplete", c.ID)
		}
		line, err := json.Marshal(res)
		if err != nil {
			return "", fmt.Errorf("sweep: cell %s: %w", c.ID, err)
		}
		buf.Write(line)
		buf.WriteByte('\n')
	}
	report := filepath.Join(dir, ReportName)
	tmp := report + ".tmp"
	if err := os.WriteFile(tmp, buf.Bytes(), 0o644); err != nil {
		return "", fmt.Errorf("sweep: %w", err)
	}
	if err := os.Rename(tmp, report); err != nil {
		return "", fmt.Errorf("sweep: %w", err)
	}
	return report, nil
}
