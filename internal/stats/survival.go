package stats

import (
	"sort"
)

// SurvivalPoint is one step of a Kaplan-Meier survival curve: the estimated
// probability that the duration exceeds Time.
type SurvivalPoint struct {
	Time     float64
	Survival float64
	AtRisk   int
	Events   int
}

// Observation is a possibly right-censored duration. Censored observations
// arise when a component is retired or the log window ends before the next
// failure (the paper's log windows truncate the final inter-arrival of
// every node).
type Observation struct {
	Duration float64
	Censored bool
}

// KaplanMeier computes the product-limit survival estimate for the given
// observations. The returned curve is sorted by time and contains one point
// per distinct event time. Censored-only inputs yield a flat curve at 1.
func KaplanMeier(obs []Observation) ([]SurvivalPoint, error) {
	if len(obs) == 0 {
		return nil, ErrEmpty
	}
	sorted := append([]Observation(nil), obs...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Duration < sorted[j].Duration })

	var curve []SurvivalPoint
	surv := 1.0
	atRisk := len(sorted)
	for i := 0; i < len(sorted); {
		t := sorted[i].Duration
		events, removed := 0, 0
		for i < len(sorted) && sorted[i].Duration == t {
			if !sorted[i].Censored {
				events++
			}
			removed++
			i++
		}
		if events > 0 {
			surv *= 1 - float64(events)/float64(atRisk)
			curve = append(curve, SurvivalPoint{Time: t, Survival: surv, AtRisk: atRisk, Events: events})
		}
		atRisk -= removed
	}
	if curve == nil {
		// All observations censored: survival never drops below 1.
		curve = []SurvivalPoint{{Time: sorted[len(sorted)-1].Duration, Survival: 1, AtRisk: len(sorted)}}
	}
	return curve, nil
}

// MedianSurvivalTime returns the earliest time at which the survival curve
// drops to 0.5 or below, or NaN (as ok=false) when the curve never reaches
// it (heavy censoring).
func MedianSurvivalTime(curve []SurvivalPoint) (float64, bool) {
	for _, pt := range curve {
		if pt.Survival <= 0.5 {
			return pt.Time, true
		}
	}
	return 0, false
}

// RestrictedMeanSurvival returns the restricted mean survival time up to
// horizon tau: the area under the Kaplan-Meier curve on [0, tau]. This is
// the standard way to compare MTBF across systems with different censoring.
func RestrictedMeanSurvival(curve []SurvivalPoint, tau float64) float64 {
	var area float64
	prevT, prevS := 0.0, 1.0
	for _, pt := range curve {
		t := pt.Time
		if t > tau {
			t = tau
		}
		if t > prevT {
			area += prevS * (t - prevT)
			prevT = t
		}
		prevS = pt.Survival
		if pt.Time >= tau {
			return area
		}
	}
	if tau > prevT {
		area += prevS * (tau - prevT)
	}
	return area
}

// HazardPoint is one step of a Nelson-Aalen cumulative-hazard curve.
type HazardPoint struct {
	Time             float64
	CumulativeHazard float64
}

// NelsonAalen computes the cumulative-hazard estimator H(t) = sum d_i/n_i
// over event times, the standard companion to Kaplan-Meier: a straight
// line means a constant failure rate (exponential lifetimes); upward
// curvature means aging, downward means infant mortality.
func NelsonAalen(obs []Observation) ([]HazardPoint, error) {
	if len(obs) == 0 {
		return nil, ErrEmpty
	}
	sorted := append([]Observation(nil), obs...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Duration < sorted[j].Duration })
	var curve []HazardPoint
	hazard := 0.0
	atRisk := len(sorted)
	for i := 0; i < len(sorted); {
		t := sorted[i].Duration
		events, removed := 0, 0
		for i < len(sorted) && sorted[i].Duration == t {
			if !sorted[i].Censored {
				events++
			}
			removed++
			i++
		}
		if events > 0 {
			hazard += float64(events) / float64(atRisk)
			curve = append(curve, HazardPoint{Time: t, CumulativeHazard: hazard})
		}
		atRisk -= removed
	}
	if curve == nil {
		curve = []HazardPoint{{Time: sorted[len(sorted)-1].Duration}}
	}
	return curve, nil
}
