package stats

import (
	"fmt"
	"math"
)

// ChiSquare returns the chi-square goodness-of-fit statistic of observed
// counts against expected counts, plus the asymptotic p-value with
// len(observed)-1 degrees of freedom. The seasonal analysis uses it to test
// whether monthly failure counts (Figure 12) are uniform.
//
// Fewer than two cells returns ErrEmpty, a length mismatch ErrMismatch,
// and an expected cell that is NaN, infinite, or not strictly positive an
// explicit error — NaN previously slipped past the positivity check
// (NaN <= 0 is false) and silently poisoned the statistic.
func ChiSquare(observed []int, expected []float64) (stat, p float64, err error) {
	if len(observed) != len(expected) {
		return 0, 0, ErrMismatch
	}
	if len(observed) < 2 {
		return 0, 0, ErrEmpty
	}
	for i, e := range expected {
		if math.IsNaN(e) {
			return 0, 0, fmt.Errorf("stats: expected count %d is NaN: %w", i, ErrNaN)
		}
		if !(e > 0) || math.IsInf(e, 1) {
			return 0, 0, fmt.Errorf("stats: expected count %d is not a positive finite value (%v)", i, e)
		}
		d := float64(observed[i]) - e
		stat += d * d / e
	}
	df := float64(len(observed) - 1)
	return stat, ChiSquareSurvival(stat, df), nil
}

// ChiSquareUniform tests observed counts against a uniform expectation.
func ChiSquareUniform(observed []int) (stat, p float64, err error) {
	if len(observed) < 2 {
		return 0, 0, ErrEmpty
	}
	var total int
	for _, o := range observed {
		total += o
	}
	if total == 0 {
		return 0, 0, ErrEmpty
	}
	expected := make([]float64, len(observed))
	for i := range expected {
		expected[i] = float64(total) / float64(len(observed))
	}
	return ChiSquare(observed, expected)
}

// ChiSquareSurvival returns P(X > x) for a chi-square random variable with
// df degrees of freedom, i.e. the upper regularized incomplete gamma
// Q(df/2, x/2). NaN inputs propagate to a NaN survival probability.
func ChiSquareSurvival(x, df float64) float64 {
	if x <= 0 {
		return 1
	}
	return RegularizedGammaQ(df/2, x/2)
}

// RegularizedGammaP returns the lower regularized incomplete gamma function
// P(a, x) = gamma(a, x)/Gamma(a), computed by series expansion for
// x < a+1 and via the continued fraction for larger x (Numerical Recipes
// 6.2). NaN is returned for a <= 0 or x < 0.
func RegularizedGammaP(a, x float64) float64 {
	switch {
	case a <= 0 || x < 0 || math.IsNaN(a) || math.IsNaN(x):
		return math.NaN()
	case x == 0:
		return 0
	case x < a+1:
		return gammaPSeries(a, x)
	default:
		return 1 - gammaQContinuedFraction(a, x)
	}
}

// RegularizedGammaQ returns the upper regularized incomplete gamma function
// Q(a, x) = 1 - P(a, x).
func RegularizedGammaQ(a, x float64) float64 {
	switch {
	case a <= 0 || x < 0 || math.IsNaN(a) || math.IsNaN(x):
		return math.NaN()
	case x == 0:
		return 1
	case x < a+1:
		return 1 - gammaPSeries(a, x)
	default:
		return gammaQContinuedFraction(a, x)
	}
}

const (
	gammaMaxIter = 500
	gammaEps     = 1e-14
)

func gammaPSeries(a, x float64) float64 {
	lg, _ := math.Lgamma(a)
	ap := a
	sum := 1 / a
	del := sum
	for i := 0; i < gammaMaxIter; i++ {
		ap++
		del *= x / ap
		sum += del
		if math.Abs(del) < math.Abs(sum)*gammaEps {
			break
		}
	}
	return sum * math.Exp(-x+a*math.Log(x)-lg)
}

func gammaQContinuedFraction(a, x float64) float64 {
	lg, _ := math.Lgamma(a)
	const tiny = 1e-300
	b := x + 1 - a
	c := 1 / tiny
	d := 1 / b
	h := d
	for i := 1; i <= gammaMaxIter; i++ {
		an := -float64(i) * (float64(i) - a)
		b += 2
		d = an*d + b
		if math.Abs(d) < tiny {
			d = tiny
		}
		c = b + an/c
		if math.Abs(c) < tiny {
			c = tiny
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < gammaEps {
			break
		}
	}
	return math.Exp(-x+a*math.Log(x)-lg) * h
}
