package stats

import (
	"math/rand"
	"testing"
)

func TestBootstrapCIErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if _, _, err := BootstrapCI(nil, Mean, 0.95, 100, rng); err != ErrEmpty {
		t.Errorf("empty error = %v", err)
	}
	xs := []float64{1, 2, 3}
	if _, _, err := BootstrapCI(xs, Mean, 1.5, 100, rng); err == nil {
		t.Error("expected error for level outside (0,1)")
	}
	if _, _, err := BootstrapCI(xs, Mean, 0.95, 0, rng); err == nil {
		t.Error("expected error for zero rounds")
	}
	if _, _, err := BootstrapCI(xs, Mean, 0.95, 100, nil); err == nil {
		t.Error("expected error for nil rng")
	}
}

func TestBootstrapCICoversMean(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	xs := make([]float64, 400)
	for i := range xs {
		xs[i] = rng.ExpFloat64() * 55 // MTTR-like sample, true mean 55
	}
	lo, hi, err := BootstrapCI(xs, Mean, 0.95, 500, rng)
	if err != nil {
		t.Fatal(err)
	}
	m := Mean(xs)
	if !(lo < m && m < hi) {
		t.Errorf("CI [%v, %v] does not contain the sample mean %v", lo, hi, m)
	}
	if hi-lo <= 0 {
		t.Errorf("CI width = %v, want positive", hi-lo)
	}
	// The 95% interval of a 400-sample exponential mean is roughly
	// +/- 2*55/20 = 5.5; allow generous slack but reject absurd widths.
	if hi-lo > 30 {
		t.Errorf("CI suspiciously wide: [%v, %v]", lo, hi)
	}
}

func TestBootstrapCIDeterministic(t *testing.T) {
	xs := []float64{3, 1, 4, 1, 5, 9, 2, 6}
	lo1, hi1, err := BootstrapCI(xs, Median, 0.9, 200, rand.New(rand.NewSource(5)))
	if err != nil {
		t.Fatal(err)
	}
	lo2, hi2, err := BootstrapCI(xs, Median, 0.9, 200, rand.New(rand.NewSource(5)))
	if err != nil {
		t.Fatal(err)
	}
	if lo1 != lo2 || hi1 != hi2 {
		t.Errorf("same seed produced different CIs: [%v,%v] vs [%v,%v]", lo1, hi1, lo2, hi2)
	}
}

func TestBootstrapCINarrowsWithLevel(t *testing.T) {
	xs := make([]float64, 200)
	rng := rand.New(rand.NewSource(9))
	for i := range xs {
		xs[i] = rng.NormFloat64()
	}
	lo99, hi99, _ := BootstrapCI(xs, Mean, 0.99, 800, rand.New(rand.NewSource(1)))
	lo80, hi80, _ := BootstrapCI(xs, Mean, 0.80, 800, rand.New(rand.NewSource(1)))
	if hi80-lo80 >= hi99-lo99 {
		t.Errorf("80%% CI [%v,%v] should be narrower than 99%% CI [%v,%v]", lo80, hi80, lo99, hi99)
	}
}

func TestBootstrapSE(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	xs := make([]float64, 100)
	for i := range xs {
		xs[i] = rng.NormFloat64() * 10
	}
	se, err := BootstrapSE(xs, Mean, 400, rng)
	if err != nil {
		t.Fatal(err)
	}
	// True SE of the mean is sigma/sqrt(n) = 1; bootstrap estimate should
	// land in the neighborhood.
	if se < 0.5 || se > 2 {
		t.Errorf("bootstrap SE = %v, want ~1", se)
	}
	if _, err := BootstrapSE(nil, Mean, 10, rng); err != ErrEmpty {
		t.Errorf("empty error = %v", err)
	}
	if _, err := BootstrapSE(xs, Mean, 1, rng); err == nil {
		t.Error("expected error for rounds < 2")
	}
	if _, err := BootstrapSE(xs, Mean, 10, nil); err == nil {
		t.Error("expected error for nil rng")
	}
}
