package stats

import (
	"fmt"
	"math"
)

// Histogram bins a sample into equal-width buckets over [Lo, Hi). Values
// below Lo land in the first bucket and values at or above Hi land in the
// last, so every observation is counted (the monthly failure-count figures
// must not silently drop records).
type Histogram struct {
	Lo, Hi float64
	Counts []int
	total  int
}

// NewHistogram creates a histogram with bins equal-width buckets spanning
// [lo, hi). It returns an error if bins < 1 or hi <= lo.
func NewHistogram(lo, hi float64, bins int) (*Histogram, error) {
	if bins < 1 {
		return nil, fmt.Errorf("stats: histogram needs at least 1 bin, got %d", bins)
	}
	if !(hi > lo) {
		return nil, fmt.Errorf("stats: histogram range [%v, %v) is empty", lo, hi)
	}
	return &Histogram{Lo: lo, Hi: hi, Counts: make([]int, bins)}, nil
}

// Add records one observation.
func (h *Histogram) Add(x float64) {
	h.total++
	if math.IsNaN(x) {
		// NaN observations count toward the total but no bucket; the
		// caller can detect them via Total() vs the bucket sum.
		return
	}
	i := int(float64(len(h.Counts)) * (x - h.Lo) / (h.Hi - h.Lo))
	if i < 0 {
		i = 0
	}
	if i >= len(h.Counts) {
		i = len(h.Counts) - 1
	}
	h.Counts[i]++
}

// AddAll records every observation in xs.
func (h *Histogram) AddAll(xs []float64) {
	for _, x := range xs {
		h.Add(x)
	}
}

// Total returns the number of observations recorded, including NaNs.
func (h *Histogram) Total() int { return h.total }

// BinWidth returns the width of each bucket.
func (h *Histogram) BinWidth() float64 { return (h.Hi - h.Lo) / float64(len(h.Counts)) }

// BinCenter returns the midpoint of bucket i.
func (h *Histogram) BinCenter(i int) float64 {
	return h.Lo + (float64(i)+0.5)*h.BinWidth()
}

// Fractions returns each bucket's share of the non-NaN observations.
// All shares are zero when the histogram is empty.
func (h *Histogram) Fractions() []float64 {
	out := make([]float64, len(h.Counts))
	var n int
	for _, c := range h.Counts {
		n += c
	}
	if n == 0 {
		return out
	}
	for i, c := range h.Counts {
		out[i] = float64(c) / float64(n)
	}
	return out
}

// Mode returns the index of the fullest bucket (the smallest index wins
// ties).
func (h *Histogram) Mode() int {
	best := 0
	for i, c := range h.Counts {
		if c > h.Counts[best] {
			best = i
		}
	}
	return best
}
