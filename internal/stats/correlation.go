package stats

import (
	"math"
	"sort"
)

// Pearson returns the Pearson product-moment correlation coefficient of the
// paired samples xs and ys. It returns ErrMismatch when the lengths differ
// and ErrEmpty when fewer than two pairs are supplied. A sample with zero
// variance yields NaN.
func Pearson(xs, ys []float64) (float64, error) {
	if len(xs) != len(ys) {
		return 0, ErrMismatch
	}
	if len(xs) < 2 {
		return 0, ErrEmpty
	}
	mx, my := Mean(xs), Mean(ys)
	var sxy, sxx, syy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return math.NaN(), nil
	}
	return sxy / math.Sqrt(sxx*syy), nil
}

// Spearman returns Spearman's rank correlation coefficient of the paired
// samples, with mid-ranks assigned to ties. The paper uses rank correlation
// to test whether monthly failure density predicts monthly recovery time
// (Figures 11 and 12): it does not.
func Spearman(xs, ys []float64) (float64, error) {
	if len(xs) != len(ys) {
		return 0, ErrMismatch
	}
	if len(xs) < 2 {
		return 0, ErrEmpty
	}
	return Pearson(Ranks(xs), Ranks(ys))
}

// Ranks returns the 1-based mid-ranks of xs: tied observations all receive
// the average of the ranks they span.
func Ranks(xs []float64) []float64 {
	n := len(xs)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return xs[idx[a]] < xs[idx[b]] })

	ranks := make([]float64, n)
	for i := 0; i < n; {
		j := i
		for j < n && xs[idx[j]] == xs[idx[i]] {
			j++
		}
		// Observations idx[i..j) are tied over ranks i+1..j; assign the
		// mid-rank to each.
		mid := float64(i+1+j) / 2
		for k := i; k < j; k++ {
			ranks[idx[k]] = mid
		}
		i = j
	}
	return ranks
}

// AutoCorrelation returns the lag-k sample autocorrelation of xs. It is
// used to quantify temporal clustering of multi-GPU failures (Figure 8).
// NaN is returned when the series is too short or has zero variance.
func AutoCorrelation(xs []float64, lag int) float64 {
	n := len(xs)
	if lag < 0 || lag >= n || n < 2 {
		return math.NaN()
	}
	m := Mean(xs)
	var num, den float64
	for i := 0; i < n; i++ {
		d := xs[i] - m
		den += d * d
	}
	if den == 0 {
		return math.NaN()
	}
	for i := 0; i+lag < n; i++ {
		num += (xs[i] - m) * (xs[i+lag] - m)
	}
	return num / den
}
