package stats

import (
	"errors"
	"math"
	"sort"
)

// ECDF is an empirical cumulative distribution function built from a
// sample. It backs the cumulative TBF/TTR plots (Figures 6 and 9 of the
// paper). The zero value is unusable; construct with NewECDF.
type ECDF struct {
	sorted []float64
}

// NewECDF builds an ECDF from xs. It copies and sorts the sample, so the
// caller retains ownership of xs. It returns ErrEmpty for an empty sample.
func NewECDF(xs []float64) (*ECDF, error) {
	if len(xs) == 0 {
		return nil, ErrEmpty
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	return &ECDF{sorted: sorted}, nil
}

// ErrUnsorted is returned by sorted-path constructors handed a sample
// that is not in ascending order.
var ErrUnsorted = errors.New("stats: sample not sorted ascending")

// NewECDFSorted builds an ECDF directly over an already-sorted sample
// WITHOUT copying: the ECDF aliases the given slice, so the caller must
// never mutate it afterwards. This is the zero-copy entry point for the
// analysis index's sorted arenas, where one sort is shared between the
// ECDF, quantile, and distribution-fitting consumers. It returns
// ErrEmpty for an empty sample and ErrUnsorted when the input is out of
// order (an O(n) check, far cheaper than the sort it replaces).
func NewECDFSorted(sorted []float64) (*ECDF, error) {
	if len(sorted) == 0 {
		return nil, ErrEmpty
	}
	if !sort.Float64sAreSorted(sorted) {
		return nil, ErrUnsorted
	}
	return &ECDF{sorted: sorted}, nil
}

// N returns the sample size.
func (e *ECDF) N() int { return len(e.sorted) }

// Eval returns F(x) = P(X <= x), the fraction of the sample at or below x.
func (e *ECDF) Eval(x float64) float64 {
	// sort.SearchFloat64s returns the first index with sorted[i] >= x, so
	// scan forward over ties to include every element equal to x.
	i := sort.SearchFloat64s(e.sorted, x)
	for i < len(e.sorted) && e.sorted[i] == x {
		i++
	}
	return float64(i) / float64(len(e.sorted))
}

// Quantile returns the p-quantile of the underlying sample using the same
// type-7 interpolation as stats.Quantile. NaN for p outside [0,1].
func (e *ECDF) Quantile(p float64) float64 {
	if p < 0 || p > 1 || math.IsNaN(p) {
		return math.NaN()
	}
	return quantileSorted(e.sorted, p)
}

// Mean returns the sample mean.
func (e *ECDF) Mean() float64 { return Mean(e.sorted) }

// Min returns the smallest observation.
func (e *ECDF) Min() float64 { return e.sorted[0] }

// Max returns the largest observation.
func (e *ECDF) Max() float64 { return e.sorted[len(e.sorted)-1] }

// Point is one (x, F(x)) coordinate of a CDF curve.
type Point struct {
	X float64
	F float64
}

// Points returns n evenly spaced points of the CDF between the sample
// minimum and maximum, suitable for plotting. n < 2 yields the two
// endpoints.
func (e *ECDF) Points(n int) []Point {
	if n < 2 {
		n = 2
	}
	lo, hi := e.Min(), e.Max()
	pts := make([]Point, n)
	for i := 0; i < n; i++ {
		x := lo + (hi-lo)*float64(i)/float64(n-1)
		pts[i] = Point{X: x, F: e.Eval(x)}
	}
	return pts
}

// StepPoints returns the exact step coordinates of the ECDF: one point per
// distinct observation, with F equal to the cumulative fraction at that
// observation.
func (e *ECDF) StepPoints() []Point {
	pts := make([]Point, 0, len(e.sorted))
	n := float64(len(e.sorted))
	for i := 0; i < len(e.sorted); {
		j := i
		for j < len(e.sorted) && e.sorted[j] == e.sorted[i] {
			j++
		}
		pts = append(pts, Point{X: e.sorted[i], F: float64(j) / n})
		i = j
	}
	return pts
}
