package stats

import (
	"errors"
	"math"
	"testing"
)

// The conformance harness (internal/conform) feeds KS and chi-square with
// machine-derived samples; these tables pin the contract it relies on for
// degenerate inputs: empty samples and length mismatches return sentinel
// errors, NaN inputs return ErrNaN (or a NaN statistic where the API is
// value-returning), and all-ties samples stay well-defined.

func TestKSOneSampleEdgeCases(t *testing.T) {
	stdCDF := func(x float64) float64 { return 0.5 * (1 + math.Erf(x/math.Sqrt2)) }
	tests := []struct {
		name    string
		xs      []float64
		cdf     func(float64) float64
		wantErr error
		wantD   func(d float64) bool
	}{
		{"empty", nil, stdCDF, ErrEmpty, nil},
		{"nan input", []float64{1, math.NaN(), 3}, stdCDF, ErrNaN, math.IsNaN},
		{"all nan", []float64{math.NaN(), math.NaN()}, stdCDF, ErrNaN, math.IsNaN},
		{"all ties", []float64{2, 2, 2, 2}, stdCDF, nil, func(d float64) bool {
			// Empirical CDF is one step at 2; D = max(F(2), 1-F(2)).
			f := stdCDF(2.0)
			want := math.Max(f, 1-f)
			return math.Abs(d-want) < 1e-12
		}},
		{"nan cdf propagates", []float64{1, 2, 3}, func(float64) float64 { return math.NaN() }, nil, math.IsNaN},
		{"single value", []float64{0}, stdCDF, nil, func(d float64) bool { return d == 0.5 }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			d, err := KSOneSample(tt.xs, tt.cdf)
			if !errors.Is(err, tt.wantErr) {
				t.Fatalf("err = %v, want %v", err, tt.wantErr)
			}
			if tt.wantD != nil && !tt.wantD(d) {
				t.Errorf("d = %v fails the case's predicate", d)
			}
		})
	}
}

func TestKSTwoSampleEdgeCases(t *testing.T) {
	tests := []struct {
		name    string
		xs, ys  []float64
		wantErr error
		wantD   float64 // compared when wantErr is nil
	}{
		{"empty left", nil, []float64{1}, ErrEmpty, 0},
		{"empty right", []float64{1}, nil, ErrEmpty, 0},
		{"nan left", []float64{math.NaN()}, []float64{1, 2}, ErrNaN, 0},
		{"nan right", []float64{1, 2}, []float64{2, math.NaN()}, ErrNaN, 0},
		{"all ties equal", []float64{3, 3, 3}, []float64{3, 3}, nil, 0},
		{"all ties disjoint", []float64{1, 1}, []float64{2, 2, 2}, nil, 1},
		{"identical samples", []float64{1, 2, 3}, []float64{1, 2, 3}, nil, 0},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			d, err := KSTwoSample(tt.xs, tt.ys)
			if !errors.Is(err, tt.wantErr) {
				t.Fatalf("err = %v, want %v", err, tt.wantErr)
			}
			if tt.wantErr != nil {
				if !math.IsNaN(d) && errors.Is(tt.wantErr, ErrNaN) {
					t.Errorf("NaN input should yield NaN statistic, got %v", d)
				}
				return
			}
			if math.Abs(d-tt.wantD) > 1e-12 {
				t.Errorf("d = %v, want %v", d, tt.wantD)
			}
		})
	}
}

func TestKSTestConvenience(t *testing.T) {
	uniform := func(x float64) float64 {
		switch {
		case x < 0:
			return 0
		case x > 1:
			return 1
		default:
			return x
		}
	}
	// A perfectly spread sample: small statistic, large p-value.
	xs := []float64{0.1, 0.3, 0.5, 0.7, 0.9}
	d, p, err := KSTest(xs, uniform)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(d-0.1) > 1e-12 {
		t.Errorf("d = %v, want 0.1", d)
	}
	if p < 0.99 {
		t.Errorf("p = %v, want ~1 for a conforming sample", p)
	}
	// A sample concentrated at one end: decisive rejection.
	lo := []float64{0.01, 0.02, 0.03, 0.01, 0.02, 0.01, 0.02, 0.03, 0.01, 0.02,
		0.01, 0.02, 0.03, 0.01, 0.02, 0.01, 0.02, 0.03, 0.01, 0.02}
	if _, p, err = KSTest(lo, uniform); err != nil || p > 0.001 {
		t.Errorf("concentrated sample: p = %v, err = %v, want tiny p", p, err)
	}
	// Error propagation carries a NaN p-value.
	if _, p, err = KSTest([]float64{math.NaN()}, uniform); !errors.Is(err, ErrNaN) || !math.IsNaN(p) {
		t.Errorf("NaN sample: p = %v, err = %v, want ErrNaN and NaN p", p, err)
	}
	if _, p, err = KSTest(nil, uniform); !errors.Is(err, ErrEmpty) || !math.IsNaN(p) {
		t.Errorf("empty sample: p = %v, err = %v, want ErrEmpty and NaN p", p, err)
	}
}

func TestKSTestTwoSampleConvenience(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5, 6, 7, 8}
	ys := []float64{1.1, 2.1, 3.1, 4.1, 5.1, 6.1, 7.1, 8.1}
	d, p, err := KSTestTwoSample(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if d <= 0 || d > 0.2 {
		t.Errorf("d = %v, want a small positive shift", d)
	}
	if p < 0.9 {
		t.Errorf("p = %v, want ~1 for nearly identical samples", p)
	}
	if _, p, err = KSTestTwoSample(xs, []float64{math.NaN()}); !errors.Is(err, ErrNaN) || !math.IsNaN(p) {
		t.Errorf("NaN sample: p = %v, err = %v, want ErrNaN and NaN p", p, err)
	}
}

func TestKSPValueNaNPropagation(t *testing.T) {
	if p := KSPValue(math.NaN(), 10); !math.IsNaN(p) {
		t.Errorf("KSPValue(NaN, 10) = %v, want NaN", p)
	}
	if p := KSPValue(0.1, math.NaN()); !math.IsNaN(p) {
		t.Errorf("KSPValue(0.1, NaN) = %v, want NaN", p)
	}
	if p := KSPValue(0, 10); p != 1 {
		t.Errorf("KSPValue(0, 10) = %v, want 1", p)
	}
}

func TestChiSquareEdgeCases(t *testing.T) {
	tests := []struct {
		name     string
		observed []int
		expected []float64
		wantErr  error // nil means "any non-nil error acceptable" when wantAnyErr
		wantAny  bool
	}{
		{"mismatch", []int{1, 2}, []float64{1}, ErrMismatch, false},
		{"too few cells", []int{5}, []float64{5}, ErrEmpty, false},
		{"nan expected", []int{1, 2}, []float64{1, math.NaN()}, ErrNaN, false},
		{"zero expected", []int{1, 2}, []float64{1, 0}, nil, true},
		{"negative expected", []int{1, 2}, []float64{1, -3}, nil, true},
		{"inf expected", []int{1, 2}, []float64{1, math.Inf(1)}, nil, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			_, _, err := ChiSquare(tt.observed, tt.expected)
			if tt.wantAny {
				if err == nil {
					t.Fatal("want an error")
				}
				return
			}
			if !errors.Is(err, tt.wantErr) {
				t.Fatalf("err = %v, want %v", err, tt.wantErr)
			}
		})
	}
	// A valid call still works after the stricter validation.
	stat, p, err := ChiSquare([]int{10, 10}, []float64{10, 10})
	if err != nil || stat != 0 || p != 1 {
		t.Errorf("exact fit: stat=%v p=%v err=%v, want 0, 1, nil", stat, p, err)
	}
}

func TestChiSquareSurvivalNaN(t *testing.T) {
	if s := ChiSquareSurvival(math.NaN(), 3); !math.IsNaN(s) {
		t.Errorf("ChiSquareSurvival(NaN, 3) = %v, want NaN", s)
	}
	if s := ChiSquareSurvival(2, math.NaN()); !math.IsNaN(s) {
		t.Errorf("ChiSquareSurvival(2, NaN) = %v, want NaN", s)
	}
}
