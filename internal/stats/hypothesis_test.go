package stats

import (
	"math"
	"math/rand"
	"testing"
)

func TestMannWhitneyIdenticalSamples(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5, 6, 7, 8}
	res, err := MannWhitney(xs, xs)
	if err != nil {
		t.Fatal(err)
	}
	if res.P < 0.9 {
		t.Errorf("identical samples p = %v, want ~1", res.P)
	}
}

func TestMannWhitneyShiftedSamples(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	xs := make([]float64, 60)
	ys := make([]float64, 60)
	for i := range xs {
		xs[i] = rng.NormFloat64()
		ys[i] = rng.NormFloat64() + 2 // clearly shifted
	}
	res, err := MannWhitney(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if res.P > 1e-6 {
		t.Errorf("shifted samples p = %v, want ~0", res.P)
	}
	if res.Z > 0 {
		t.Errorf("z = %v, want negative (first sample smaller)", res.Z)
	}
}

func TestMannWhitneyKnownU(t *testing.T) {
	// Textbook example: xs = {1,2}, ys = {3,4,5}: U1 = 0.
	res, err := MannWhitney([]float64{1, 2}, []float64{3, 4, 5})
	if err != nil {
		t.Fatal(err)
	}
	if res.U != 0 {
		t.Errorf("U = %v, want 0", res.U)
	}
	// Reversed: U1 = n1*n2 = 6.
	res, err = MannWhitney([]float64{3, 4, 5}, []float64{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.U != 6 {
		t.Errorf("U = %v, want 6", res.U)
	}
}

func TestMannWhitneyAllTied(t *testing.T) {
	res, err := MannWhitney([]float64{5, 5}, []float64{5, 5, 5})
	if err != nil {
		t.Fatal(err)
	}
	if res.P != 1 {
		t.Errorf("all-tied p = %v, want 1", res.P)
	}
}

func TestMannWhitneyEmpty(t *testing.T) {
	if _, err := MannWhitney(nil, []float64{1}); err != ErrEmpty {
		t.Errorf("error = %v, want ErrEmpty", err)
	}
}

func TestKendallTauPerfect(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	ys := []float64{10, 20, 30, 40}
	tau, err := KendallTau(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(tau, 1, 1e-12) {
		t.Errorf("tau = %v, want 1", tau)
	}
	rev := []float64{40, 30, 20, 10}
	tau, _ = KendallTau(xs, rev)
	if !almostEqual(tau, -1, 1e-12) {
		t.Errorf("tau = %v, want -1", tau)
	}
}

func TestKendallTauKnownValue(t *testing.T) {
	// Hand-computed: xs={1,2,3}, ys={1,3,2}: pairs (1,2)C (1,3)C (2,3)D
	// -> tau = (2-1)/3.
	tau, err := KendallTau([]float64{1, 2, 3}, []float64{1, 3, 2})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(tau, 1.0/3, 1e-12) {
		t.Errorf("tau = %v, want 1/3", tau)
	}
}

func TestKendallTauTies(t *testing.T) {
	// All xs tied: denominator collapses -> NaN.
	tau, err := KendallTau([]float64{1, 1, 1}, []float64{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsNaN(tau) {
		t.Errorf("degenerate tau = %v, want NaN", tau)
	}
}

func TestKendallTauErrors(t *testing.T) {
	if _, err := KendallTau([]float64{1}, []float64{1, 2}); err != ErrMismatch {
		t.Errorf("mismatch error = %v", err)
	}
	if _, err := KendallTau([]float64{1}, []float64{1}); err != ErrEmpty {
		t.Errorf("short error = %v", err)
	}
}

func TestGini(t *testing.T) {
	tests := []struct {
		name string
		in   []float64
		want float64
	}{
		{"perfectly even", []float64{5, 5, 5, 5}, 0},
		{"single holder", []float64{10}, 0},
		// All mass on one of four holders: G = (n-1)/n = 0.75.
		{"maximal concentration", []float64{0, 0, 0, 10}, 0.75},
		{"all zeros", []float64{0, 0}, 0},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got, err := Gini(tt.in)
			if err != nil {
				t.Fatal(err)
			}
			if !almostEqual(got, tt.want, 1e-12) {
				t.Errorf("Gini = %v, want %v", got, tt.want)
			}
		})
	}
	if _, err := Gini(nil); err != ErrEmpty {
		t.Errorf("empty error = %v", err)
	}
	if _, err := Gini([]float64{1, -1}); err == nil {
		t.Error("negative values should fail")
	}
}

func TestGiniMonotoneInConcentration(t *testing.T) {
	even, _ := Gini([]float64{3, 3, 3, 3})
	mild, _ := Gini([]float64{1, 2, 4, 5})
	strong, _ := Gini([]float64{0, 0, 1, 11})
	if !(even < mild && mild < strong) {
		t.Errorf("Gini not increasing with concentration: %v, %v, %v", even, mild, strong)
	}
}

func TestLorenz(t *testing.T) {
	curve, err := Lorenz([]float64{1, 1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(curve) != 4 {
		t.Fatalf("curve = %+v", curve)
	}
	if curve[0].PopShare != 0 || curve[0].MassShare != 0 {
		t.Error("curve should start at the origin")
	}
	last := curve[len(curve)-1]
	if !almostEqual(last.PopShare, 1, 1e-12) || !almostEqual(last.MassShare, 1, 1e-12) {
		t.Errorf("curve should end at (1,1): %+v", last)
	}
	// Lorenz curves lie under the diagonal and are non-decreasing.
	prev := LorenzPoint{}
	for _, pt := range curve {
		if pt.MassShare > pt.PopShare+1e-12 {
			t.Errorf("curve above diagonal at %+v", pt)
		}
		if pt.MassShare < prev.MassShare || pt.PopShare < prev.PopShare {
			t.Errorf("curve not monotone at %+v", pt)
		}
		prev = pt
	}
	if _, err := Lorenz(nil); err != ErrEmpty {
		t.Errorf("empty error = %v", err)
	}
}

func TestNormalSurvival(t *testing.T) {
	if got := normalSurvival(0); !almostEqual(got, 0.5, 1e-12) {
		t.Errorf("S(0) = %v", got)
	}
	if got := normalSurvival(1.959964); !almostEqual(got, 0.025, 1e-6) {
		t.Errorf("S(1.96) = %v, want 0.025", got)
	}
}

func TestMannKendallTrend(t *testing.T) {
	increasing := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12}
	res, err := MannKendall(increasing)
	if err != nil {
		t.Fatal(err)
	}
	if res.S != 66 { // all 66 pairs concordant
		t.Errorf("S = %d, want 66", res.S)
	}
	if res.P > 1e-4 {
		t.Errorf("monotone series p = %v, want ~0", res.P)
	}
	if res.Z <= 0 {
		t.Errorf("Z = %v, want positive for an increasing series", res.Z)
	}
}

func TestMannKendallNoTrend(t *testing.T) {
	flat := []float64{5, 3, 6, 4, 5, 6, 3, 5, 4, 6, 5, 4}
	res, err := MannKendall(flat)
	if err != nil {
		t.Fatal(err)
	}
	if res.P < 0.1 {
		t.Errorf("trendless series p = %v, want large", res.P)
	}
}

func TestMannKendallAllTied(t *testing.T) {
	res, err := MannKendall([]float64{7, 7, 7, 7})
	if err != nil {
		t.Fatal(err)
	}
	if res.P != 1 || res.S != 0 {
		t.Errorf("all-tied result = %+v, want S=0 p=1", res)
	}
}

func TestMannKendallErrors(t *testing.T) {
	if _, err := MannKendall([]float64{1, 2}); err != ErrEmpty {
		t.Errorf("short series error = %v", err)
	}
}
