package stats

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

// streamSamples builds deterministic test distributions: the heavy-
// tailed shapes (lognormal TTR, exponential TBF) the sketches meet in
// production, plus uniform as the easy case.
func streamSamples(n int) map[string][]float64 {
	rng := rand.New(rand.NewSource(1))
	uniform := make([]float64, n)
	lognormal := make([]float64, n)
	exponential := make([]float64, n)
	for i := 0; i < n; i++ {
		uniform[i] = rng.Float64() * 100
		lognormal[i] = math.Exp(rng.NormFloat64()*1.5 + 1)
		exponential[i] = rng.ExpFloat64() * 12
	}
	return map[string][]float64{
		"uniform":     uniform,
		"lognormal":   lognormal,
		"exponential": exponential,
	}
}

func TestWelfordMatchesExact(t *testing.T) {
	for name, xs := range streamSamples(10000) {
		var w Welford
		for _, x := range xs {
			w.Observe(x)
		}
		wantMean, wantVar := Mean(xs), Variance(xs)
		if rel := math.Abs(w.Mean()-wantMean) / math.Abs(wantMean); rel > 1e-12 {
			t.Errorf("%s: Welford mean %g vs exact %g (rel %g)", name, w.Mean(), wantMean, rel)
		}
		if rel := math.Abs(w.Variance()-wantVar) / wantVar; rel > 1e-9 {
			t.Errorf("%s: Welford variance %g vs exact %g (rel %g)", name, w.Variance(), wantVar, rel)
		}
		if w.Count() != int64(len(xs)) {
			t.Errorf("%s: count %d", name, w.Count())
		}
	}
}

func TestWelfordMergeEquivalence(t *testing.T) {
	xs := streamSamples(10000)["lognormal"]
	var whole Welford
	for _, x := range xs {
		whole.Observe(x)
	}
	// Merge unequal chunks (including an empty one) block-style.
	var merged Welford
	bounds := []int{0, 1, 1, 137, 5000, len(xs)}
	for i := 1; i < len(bounds); i++ {
		var part Welford
		for _, x := range xs[bounds[i-1]:bounds[i]] {
			part.Observe(x)
		}
		merged.Merge(part)
	}
	if merged.Count() != whole.Count() {
		t.Fatalf("merged count %d vs %d", merged.Count(), whole.Count())
	}
	if rel := math.Abs(merged.Mean()-whole.Mean()) / whole.Mean(); rel > 1e-12 {
		t.Errorf("merged mean %g vs whole %g", merged.Mean(), whole.Mean())
	}
	if rel := math.Abs(merged.Variance()-whole.Variance()) / whole.Variance(); rel > 1e-9 {
		t.Errorf("merged variance %g vs whole %g", merged.Variance(), whole.Variance())
	}
}

func TestWelfordNaNPoison(t *testing.T) {
	var w Welford
	w.Observe(1)
	w.Observe(math.NaN())
	w.Observe(2)
	if !math.IsNaN(w.Mean()) || !math.IsNaN(w.Variance()) {
		t.Error("NaN observation must poison mean and variance")
	}
	var clean Welford
	clean.Observe(1)
	clean.Merge(w)
	if !math.IsNaN(clean.Mean()) {
		t.Error("merging a poisoned accumulator must poison the target")
	}
	var empty Welford
	if !math.IsNaN(empty.Mean()) || !math.IsNaN(empty.Variance()) {
		t.Error("empty accumulator must report NaN")
	}
}

// rankOf returns the fraction of the sorted sample ≤ x.
func rankOf(sorted []float64, x float64) float64 {
	return float64(sort.SearchFloat64s(sorted, math.Nextafter(x, math.Inf(1)))) / float64(len(sorted))
}

// tdigestTolerance is the documented accuracy bound for the default
// compression (δ = 100): rank error ≈ 4·q·(1−q)/δ, tested with 2x
// headroom at the midrange and a fixed floor at the tails.
func tdigestTolerance(p float64) float64 {
	tol := 2 * 4 * p * (1 - p) / DefaultTDigestCompression
	if tol < 0.005 {
		tol = 0.005
	}
	return tol
}

var quantileProbes = []float64{0.01, 0.05, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 0.999}

func TestTDigestAccuracy(t *testing.T) {
	for name, xs := range streamSamples(100000) {
		td := NewTDigest(0)
		for _, x := range xs {
			td.Observe(x)
		}
		sorted := append([]float64(nil), xs...)
		sort.Float64s(sorted)
		for _, p := range quantileProbes {
			est := td.Quantile(p)
			if gotRank := rankOf(sorted, est); math.Abs(gotRank-p) > tdigestTolerance(p) {
				t.Errorf("%s p=%g: estimate %g has rank %g (err %g > tol %g)",
					name, p, est, gotRank, math.Abs(gotRank-p), tdigestTolerance(p))
			}
		}
		if td.Quantile(0) != sorted[0] || td.Quantile(1) != sorted[len(sorted)-1] {
			t.Errorf("%s: extremes not exact: %g/%g vs %g/%g",
				name, td.Quantile(0), td.Quantile(1), sorted[0], sorted[len(sorted)-1])
		}
	}
}

func TestTDigestMergeAccuracy(t *testing.T) {
	xs := streamSamples(100000)["lognormal"]
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	// Per-block digests merged pairwise, the streaming-digest shape.
	merged := NewTDigest(0)
	const block = 8192
	for lo := 0; lo < len(xs); lo += block {
		hi := lo + block
		if hi > len(xs) {
			hi = len(xs)
		}
		part := NewTDigest(0)
		for _, x := range xs[lo:hi] {
			part.Observe(x)
		}
		merged.Merge(part)
	}
	if merged.Count() != int64(len(xs)) {
		t.Fatalf("merged count %d, want %d", merged.Count(), len(xs))
	}
	for _, p := range quantileProbes {
		est := merged.Quantile(p)
		// Merging costs some accuracy; allow 2x the single-stream bound.
		tol := 2 * tdigestTolerance(p)
		if gotRank := rankOf(sorted, est); math.Abs(gotRank-p) > tol {
			t.Errorf("merged p=%g: rank %g (err %g > tol %g)", p, gotRank, math.Abs(gotRank-p), tol)
		}
	}
}

func TestTDigestEdgeCases(t *testing.T) {
	td := NewTDigest(0)
	if !math.IsNaN(td.Quantile(0.5)) || !math.IsNaN(td.Min()) {
		t.Error("empty digest must report NaN")
	}
	td.Observe(7)
	if got := td.Quantile(0.5); got != 7 {
		t.Errorf("single-sample median = %g", got)
	}
	if !math.IsNaN(td.Quantile(-0.1)) || !math.IsNaN(td.Quantile(1.1)) || !math.IsNaN(td.Quantile(math.NaN())) {
		t.Error("out-of-range p must be NaN")
	}
	td.Observe(math.NaN())
	if !math.IsNaN(td.Quantile(0.5)) || !math.IsNaN(td.Max()) {
		t.Error("NaN observation must poison the digest")
	}
	poisoned := NewTDigest(0)
	poisoned.Observe(math.NaN())
	fresh := NewTDigest(0)
	fresh.Observe(1)
	fresh.Merge(poisoned)
	if !math.IsNaN(fresh.Quantile(0.5)) {
		t.Error("merging a poisoned digest must poison the target")
	}
}

// ecdfSketchTolerance is the documented bound for the default cap
// (K = 512): each overflow compaction halves local resolution, so rank
// error grows like log2(n/K)/K — comfortably under 3% for n = 10⁵.
const ecdfSketchTolerance = 0.03

func TestECDFSketchAccuracy(t *testing.T) {
	for name, xs := range streamSamples(100000) {
		sk := NewECDFSketch(0)
		for _, x := range xs {
			sk.Observe(x)
		}
		sorted := append([]float64(nil), xs...)
		sort.Float64s(sorted)
		for _, p := range quantileProbes {
			est := sk.Quantile(p)
			if gotRank := rankOf(sorted, est); math.Abs(gotRank-p) > ecdfSketchTolerance {
				t.Errorf("%s p=%g: rank %g (err %g)", name, p, gotRank, math.Abs(gotRank-p))
			}
		}
		// Eval and the exact ECDF must agree at sample quantile points.
		for _, p := range []float64{0.1, 0.5, 0.9} {
			x := quantileSorted(sorted, p)
			if got := sk.Eval(x); math.Abs(got-p) > ecdfSketchTolerance {
				t.Errorf("%s Eval(%g) = %g, want ~%g", name, x, got, p)
			}
		}
	}
}

func TestECDFSketchMerge(t *testing.T) {
	xs := streamSamples(100000)["exponential"]
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	merged := NewECDFSketch(0)
	const block = 8192
	for lo := 0; lo < len(xs); lo += block {
		hi := lo + block
		if hi > len(xs) {
			hi = len(xs)
		}
		part := NewECDFSketch(0)
		for _, x := range xs[lo:hi] {
			part.Observe(x)
		}
		merged.Merge(part)
	}
	if merged.Count() != int64(len(xs)) {
		t.Fatalf("merged count %d, want %d", merged.Count(), len(xs))
	}
	for _, p := range quantileProbes {
		est := merged.Quantile(p)
		if gotRank := rankOf(sorted, est); math.Abs(gotRank-p) > 2*ecdfSketchTolerance {
			t.Errorf("merged p=%g: rank %g (err %g)", p, gotRank, math.Abs(gotRank-p))
		}
	}
}

func TestECDFSketchNaNPoison(t *testing.T) {
	sk := NewECDFSketch(0)
	sk.Observe(1)
	sk.Observe(math.NaN())
	if !math.IsNaN(sk.Quantile(0.5)) || !math.IsNaN(sk.Eval(1)) {
		t.Error("NaN observation must poison the sketch")
	}
	empty := NewECDFSketch(0)
	if !math.IsNaN(empty.Quantile(0.5)) {
		t.Error("empty sketch must report NaN")
	}
}
