package stats

import (
	"math"
	"sort"
)

// KSOneSample returns the one-sample Kolmogorov-Smirnov statistic
// D = sup_x |F_n(x) - F(x)| between the empirical CDF of xs and the
// hypothesized CDF cdf. It is used by the distribution-fitting code to
// choose between exponential, Weibull, and log-normal TBF/TTR models.
func KSOneSample(xs []float64, cdf func(float64) float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	n := float64(len(sorted))
	var d float64
	for i, x := range sorted {
		f := cdf(x)
		// The empirical CDF jumps from i/n to (i+1)/n at x; the supremum
		// deviation occurs at one of the two sides of the jump.
		lo := math.Abs(f - float64(i)/n)
		hi := math.Abs(float64(i+1)/n - f)
		d = math.Max(d, math.Max(lo, hi))
	}
	return d, nil
}

// KSTwoSample returns the two-sample Kolmogorov-Smirnov statistic between
// xs and ys. The paper's observation that the TTR distribution shape is
// "very similar" across Tsubame-2 and Tsubame-3 (Figure 9) is quantified
// with this statistic in our reproduction.
func KSTwoSample(xs, ys []float64) (float64, error) {
	if len(xs) == 0 || len(ys) == 0 {
		return 0, ErrEmpty
	}
	a := append([]float64(nil), xs...)
	b := append([]float64(nil), ys...)
	sort.Float64s(a)
	sort.Float64s(b)
	na, nb := float64(len(a)), float64(len(b))
	var i, j int
	var d float64
	for i < len(a) && j < len(b) {
		x := math.Min(a[i], b[j])
		for i < len(a) && a[i] <= x {
			i++
		}
		for j < len(b) && b[j] <= x {
			j++
		}
		d = math.Max(d, math.Abs(float64(i)/na-float64(j)/nb))
	}
	return d, nil
}

// KSPValue returns the asymptotic p-value for a (one- or two-sample) KS
// statistic d with effective sample size n, using the Kolmogorov limiting
// distribution Q(lambda) = 2 * sum_{k>=1} (-1)^{k-1} exp(-2 k^2 lambda^2)
// with the Stephens small-sample correction. For two samples use
// n = na*nb/(na+nb).
func KSPValue(d float64, n float64) float64 {
	if n <= 0 || d <= 0 {
		return 1
	}
	sqrtN := math.Sqrt(n)
	lambda := (sqrtN + 0.12 + 0.11/sqrtN) * d
	var p float64
	if lambda < 1.18 {
		// The alternating series converges too slowly for small lambda;
		// use the theta-function dual form of the Kolmogorov distribution.
		z := math.Pi * math.Pi / (8 * lambda * lambda)
		var cdf float64
		for k := 1; k <= 100; k += 2 {
			term := math.Exp(-float64(k*k) * z)
			cdf += term
			if term < 1e-16 {
				break
			}
		}
		cdf *= math.Sqrt(2*math.Pi) / lambda
		p = 1 - cdf
	} else {
		var sum float64
		sign := 1.0
		for k := 1; k <= 100; k++ {
			term := sign * math.Exp(-2*lambda*lambda*float64(k*k))
			sum += term
			if math.Abs(term) < 1e-12 {
				break
			}
			sign = -sign
		}
		p = 2 * sum
	}
	switch {
	case p < 0:
		return 0
	case p > 1:
		return 1
	default:
		return p
	}
}
