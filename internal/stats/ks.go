package stats

import (
	"math"
	"sort"
)

// KSOneSample returns the one-sample Kolmogorov-Smirnov statistic
// D = sup_x |F_n(x) - F(x)| between the empirical CDF of xs and the
// hypothesized CDF cdf. It is used by the distribution-fitting code to
// choose between exponential, Weibull, and log-normal TBF/TTR models.
//
// Edge cases: an empty sample returns ErrEmpty and a sample containing
// NaN returns ErrNaN (a NaN has no place in an empirical CDF). An
// all-ties sample is well-defined: the empirical CDF is a single step. A
// cdf that itself returns NaN propagates NaN into the statistic.
func KSOneSample(xs []float64, cdf func(float64) float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	if hasNaN(xs) {
		return math.NaN(), ErrNaN
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	n := float64(len(sorted))
	var d float64
	for i, x := range sorted {
		f := cdf(x)
		// The empirical CDF jumps from i/n to (i+1)/n at x; the supremum
		// deviation occurs at one of the two sides of the jump.
		lo := math.Abs(f - float64(i)/n)
		hi := math.Abs(float64(i+1)/n - f)
		d = math.Max(d, math.Max(lo, hi))
	}
	return d, nil
}

// KSTwoSample returns the two-sample Kolmogorov-Smirnov statistic between
// xs and ys. The paper's observation that the TTR distribution shape is
// "very similar" across Tsubame-2 and Tsubame-3 (Figure 9) is quantified
// with this statistic in our reproduction.
//
// An empty sample on either side returns ErrEmpty; NaN on either side
// returns ErrNaN. All-ties samples are well-defined (D is 0 when the two
// constants agree, 1 when they differ).
func KSTwoSample(xs, ys []float64) (float64, error) {
	if len(xs) == 0 || len(ys) == 0 {
		return 0, ErrEmpty
	}
	if hasNaN(xs) || hasNaN(ys) {
		return math.NaN(), ErrNaN
	}
	a := append([]float64(nil), xs...)
	b := append([]float64(nil), ys...)
	sort.Float64s(a)
	sort.Float64s(b)
	na, nb := float64(len(a)), float64(len(b))
	var i, j int
	var d float64
	for i < len(a) && j < len(b) {
		x := math.Min(a[i], b[j])
		for i < len(a) && a[i] <= x {
			i++
		}
		for j < len(b) && b[j] <= x {
			j++
		}
		d = math.Max(d, math.Abs(float64(i)/na-float64(j)/nb))
	}
	return d, nil
}

// KSTest runs the one-sample Kolmogorov-Smirnov test of xs against the
// hypothesized CDF: the statistic of KSOneSample plus its asymptotic
// p-value. It is the entry point the conformance harness uses to compare
// synthetic TBF/TTR samples against the calibrated families; errors
// follow KSOneSample (ErrEmpty, ErrNaN).
func KSTest(xs []float64, cdf func(float64) float64) (d, p float64, err error) {
	d, err = KSOneSample(xs, cdf)
	if err != nil {
		return d, math.NaN(), err
	}
	return d, KSPValue(d, float64(len(xs))), nil
}

// KSTestTwoSample runs the two-sample Kolmogorov-Smirnov test: the
// statistic of KSTwoSample plus its asymptotic p-value at the effective
// sample size na*nb/(na+nb).
func KSTestTwoSample(xs, ys []float64) (d, p float64, err error) {
	d, err = KSTwoSample(xs, ys)
	if err != nil {
		return d, math.NaN(), err
	}
	na, nb := float64(len(xs)), float64(len(ys))
	return d, KSPValue(d, na*nb/(na+nb)), nil
}

// KSPValue returns the asymptotic p-value for a (one- or two-sample) KS
// statistic d with effective sample size n, using the Kolmogorov limiting
// distribution Q(lambda) = 2 * sum_{k>=1} (-1)^{k-1} exp(-2 k^2 lambda^2)
// with the Stephens small-sample correction. For two samples use
// n = na*nb/(na+nb). A NaN statistic or size yields a NaN p-value.
func KSPValue(d float64, n float64) float64 {
	if math.IsNaN(d) || math.IsNaN(n) {
		return math.NaN()
	}
	if n <= 0 || d <= 0 {
		return 1
	}
	sqrtN := math.Sqrt(n)
	lambda := (sqrtN + 0.12 + 0.11/sqrtN) * d
	var p float64
	if lambda < 1.18 {
		// The alternating series converges too slowly for small lambda;
		// use the theta-function dual form of the Kolmogorov distribution.
		z := math.Pi * math.Pi / (8 * lambda * lambda)
		var cdf float64
		for k := 1; k <= 100; k += 2 {
			term := math.Exp(-float64(k*k) * z)
			cdf += term
			if term < 1e-16 {
				break
			}
		}
		cdf *= math.Sqrt(2*math.Pi) / lambda
		p = 1 - cdf
	} else {
		var sum float64
		sign := 1.0
		for k := 1; k <= 100; k++ {
			term := sign * math.Exp(-2*lambda*lambda*float64(k*k))
			sum += term
			if math.Abs(term) < 1e-12 {
				break
			}
			sign = -sign
		}
		p = 2 * sum
	}
	switch {
	case p < 0:
		return 0
	case p > 1:
		return 1
	default:
		return p
	}
}
