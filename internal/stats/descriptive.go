// Package stats provides the descriptive-statistics substrate used by the
// failure-log analyses: moments, quantiles, boxplot summaries, empirical
// CDFs, histograms, bootstrap confidence intervals, rank correlation,
// goodness-of-fit statistics, and Kaplan-Meier survival estimation.
//
// All functions operate on plain []float64 samples, never mutate their
// inputs, and are safe for concurrent use. Functions that require data
// return an error (or NaN where documented) on empty input rather than
// panicking.
package stats

import (
	"errors"
	"math"
	"sort"
)

// ErrEmpty is returned by statistics that are undefined on empty samples.
var ErrEmpty = errors.New("stats: empty sample")

// ErrMismatch is returned by bivariate statistics when the two samples have
// different lengths.
var ErrMismatch = errors.New("stats: sample length mismatch")

// ErrNaN is returned by hypothesis tests whose result would be meaningless
// on samples containing NaN. Descriptive statistics propagate NaN through
// their return value instead (the PR-2 NaN-propagation policy); tests that
// culminate in a pass/fail verdict fail loudly rather than emitting a NaN
// p-value that every comparison silently treats as "not significant".
var ErrNaN = errors.New("stats: sample contains NaN")

// Sum returns the sum of xs. The sum of an empty sample is 0.
func Sum(xs []float64) float64 {
	// Kahan summation keeps the long monthly aggregations stable.
	var sum, comp float64
	for _, x := range xs {
		y := x - comp
		t := sum + y
		comp = (t - sum) - y
		sum = t
	}
	return sum
}

// Mean returns the arithmetic mean of xs, or NaN if xs is empty.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	return Sum(xs) / float64(len(xs))
}

// Variance returns the unbiased (n-1) sample variance of xs.
// It returns NaN for samples with fewer than two elements.
func Variance(xs []float64) float64 {
	if len(xs) < 2 {
		return math.NaN()
	}
	m := Mean(xs)
	var ss float64
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return ss / float64(len(xs)-1)
}

// StdDev returns the unbiased sample standard deviation of xs.
func StdDev(xs []float64) float64 {
	return math.Sqrt(Variance(xs))
}

// Min returns the smallest element of xs, or NaN if xs is empty.
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the largest element of xs, or NaN if xs is empty.
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Median returns the sample median, or NaN if xs is empty.
func Median(xs []float64) float64 {
	return Quantile(xs, 0.5)
}

// hasNaN reports whether xs contains a NaN. sort.Float64s places NaNs
// first, so quantiles of a NaN-containing sample would interpolate
// against garbage order statistics — every quantile function must check
// this before sorting.
func hasNaN(xs []float64) bool {
	for _, x := range xs {
		if math.IsNaN(x) {
			return true
		}
	}
	return false
}

// Quantile returns the p-quantile (0 <= p <= 1) of xs using linear
// interpolation between order statistics (the R type-7 definition, which is
// also the numpy default). It returns NaN if xs is empty, contains NaN, or
// p is outside [0, 1]. NaN elements poison the result rather than being
// sorted to one end and silently shifting every order statistic.
func Quantile(xs []float64, p float64) float64 {
	if len(xs) == 0 || p < 0 || p > 1 || math.IsNaN(p) || hasNaN(xs) {
		return math.NaN()
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	return quantileSorted(sorted, p)
}

// quantileSorted computes the type-7 quantile of an already-sorted sample.
func quantileSorted(sorted []float64, p float64) float64 {
	n := len(sorted)
	if n == 1 {
		return sorted[0]
	}
	h := p * float64(n-1)
	lo := int(math.Floor(h))
	hi := lo + 1
	if hi >= n {
		return sorted[n-1]
	}
	frac := h - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Quantiles returns the quantiles of xs at each probability in ps, sorting
// the sample only once. Invalid probabilities yield NaN entries; a sample
// that is empty or contains NaN yields all-NaN output.
func Quantiles(xs []float64, ps []float64) []float64 {
	if len(xs) == 0 || hasNaN(xs) {
		out := make([]float64, len(ps))
		for i := range out {
			out[i] = math.NaN()
		}
		return out
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	return quantilesInto(make([]float64, len(ps)), sorted, ps)
}

// QuantilesSorted is Quantiles on an already-sorted, ascending sample: no
// copy and no sort, so the only allocation is the output slice. The
// single-sort contract of the analysis hot path (docs/PERFORMANCE.md)
// rests on this entry point: sort once — or take the index's sorted
// arena — then read every percentile from the same order statistics.
// A sample that is empty or contains NaN yields all-NaN output, matching
// Quantiles' poison semantics.
func QuantilesSorted(sorted []float64, ps []float64) []float64 {
	out := make([]float64, len(ps))
	if len(sorted) == 0 || hasNaN(sorted) {
		for i := range out {
			out[i] = math.NaN()
		}
		return out
	}
	return quantilesInto(out, sorted, ps)
}

// quantilesInto fills out[i] with the ps[i]-quantile of the sorted sample.
func quantilesInto(out, sorted []float64, ps []float64) []float64 {
	for i, p := range ps {
		if p < 0 || p > 1 || math.IsNaN(p) {
			out[i] = math.NaN()
			continue
		}
		out[i] = quantileSorted(sorted, p)
	}
	return out
}

// Summary is a five-number summary augmented with the moments used by the
// per-category TBF/TTR boxplot figures (Figures 7 and 10 of the paper).
type Summary struct {
	N      int
	Mean   float64
	StdDev float64
	Min    float64
	Q1     float64
	Median float64
	Q3     float64
	Max    float64
}

// IQR returns the interquartile range Q3-Q1, the paper's "spread".
func (s Summary) IQR() float64 { return s.Q3 - s.Q1 }

// WhiskerLow returns the Tukey lower whisker: the smallest observation
// within 1.5 IQR below Q1 is not tracked per-observation here, so this is
// the conventional max(Min, Q1-1.5*IQR) bound.
func (s Summary) WhiskerLow() float64 { return math.Max(s.Min, s.Q1-1.5*s.IQR()) }

// WhiskerHigh returns the Tukey upper whisker bound min(Max, Q3+1.5*IQR).
func (s Summary) WhiskerHigh() float64 { return math.Min(s.Max, s.Q3+1.5*s.IQR()) }

// Summarize computes a Summary of xs. It returns ErrEmpty if xs is empty.
// A sample containing NaN yields a Summary with N set and every statistic
// NaN: the order statistics of such a sample are undefined, and returning
// NaN keeps the poison visible instead of reporting a quietly shifted
// five-number summary.
func Summarize(xs []float64) (Summary, error) {
	if len(xs) == 0 {
		return Summary{}, ErrEmpty
	}
	if hasNaN(xs) {
		return nanSummary(len(xs)), nil
	}
	// One clone, one sort: every order statistic and both moments read
	// the same sorted buffer (the AllocsPerRun regression test pins the
	// single-allocation budget).
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	return summarizeSorted(sorted), nil
}

// SummarizeSorted is Summarize on an already-sorted, ascending sample:
// zero allocations and zero sorts, for callers that hold a sorted arena
// (the per-Run analysis index). NaN poison semantics match Summarize.
func SummarizeSorted(sorted []float64) (Summary, error) {
	if len(sorted) == 0 {
		return Summary{}, ErrEmpty
	}
	if hasNaN(sorted) {
		return nanSummary(len(sorted)), nil
	}
	return summarizeSorted(sorted), nil
}

// nanSummary is the poisoned Summary of a NaN-containing sample of size n.
func nanSummary(n int) Summary {
	nan := math.NaN()
	return Summary{
		N: n, Mean: nan, StdDev: nan,
		Min: nan, Q1: nan, Median: nan, Q3: nan, Max: nan,
	}
}

// summarizeSorted computes the Summary of a sorted, NaN-free sample. The
// moments are computed over the sorted order so Summarize keeps producing
// bit-identical results whether the caller pre-sorted or not.
func summarizeSorted(sorted []float64) Summary {
	s := Summary{
		N:      len(sorted),
		Mean:   Mean(sorted),
		Min:    sorted[0],
		Q1:     quantileSorted(sorted, 0.25),
		Median: quantileSorted(sorted, 0.5),
		Q3:     quantileSorted(sorted, 0.75),
		Max:    sorted[len(sorted)-1],
	}
	if len(sorted) > 1 {
		s.StdDev = StdDev(sorted)
	}
	return s
}

// GeometricMean returns the geometric mean of xs. All elements must be
// positive; otherwise NaN is returned.
func GeometricMean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	var logSum float64
	for _, x := range xs {
		if x <= 0 {
			return math.NaN()
		}
		logSum += math.Log(x)
	}
	return math.Exp(logSum / float64(len(xs)))
}

// CoefficientOfVariation returns StdDev/Mean, a scale-free dispersion
// measure used when comparing TTR spread across failure categories.
func CoefficientOfVariation(xs []float64) float64 {
	m := Mean(xs)
	if m == 0 || math.IsNaN(m) {
		return math.NaN()
	}
	return StdDev(xs) / m
}
