package stats

import (
	"fmt"
	"math/rand"
	"sort"
)

// BootstrapCI estimates a percentile-method confidence interval for an
// arbitrary statistic of xs by resampling with replacement. level is the
// confidence level in (0, 1), e.g. 0.95; rounds is the number of bootstrap
// resamples; rng provides determinism (analyses must be reproducible run to
// run).
//
// The MTBF and MTTR point estimates reported in EXPERIMENTS.md carry
// bootstrap intervals produced by this function.
func BootstrapCI(xs []float64, stat func([]float64) float64, level float64, rounds int, rng *rand.Rand) (lo, hi float64, err error) {
	if len(xs) == 0 {
		return 0, 0, ErrEmpty
	}
	if level <= 0 || level >= 1 {
		return 0, 0, fmt.Errorf("stats: confidence level %v outside (0, 1)", level)
	}
	if rounds < 1 {
		return 0, 0, fmt.Errorf("stats: bootstrap needs at least 1 round, got %d", rounds)
	}
	if rng == nil {
		return 0, 0, fmt.Errorf("stats: bootstrap requires a deterministic rng")
	}
	estimates := make([]float64, rounds)
	resample := make([]float64, len(xs))
	for r := 0; r < rounds; r++ {
		for i := range resample {
			resample[i] = xs[rng.Intn(len(xs))]
		}
		estimates[r] = stat(resample)
	}
	sort.Float64s(estimates)
	alpha := (1 - level) / 2
	return quantileSorted(estimates, alpha), quantileSorted(estimates, 1-alpha), nil
}

// BootstrapSE estimates the standard error of a statistic by bootstrap
// resampling.
func BootstrapSE(xs []float64, stat func([]float64) float64, rounds int, rng *rand.Rand) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	if rounds < 2 {
		return 0, fmt.Errorf("stats: bootstrap SE needs at least 2 rounds, got %d", rounds)
	}
	if rng == nil {
		return 0, fmt.Errorf("stats: bootstrap requires a deterministic rng")
	}
	estimates := make([]float64, rounds)
	resample := make([]float64, len(xs))
	for r := 0; r < rounds; r++ {
		for i := range resample {
			resample[i] = xs[rng.Intn(len(xs))]
		}
		estimates[r] = stat(resample)
	}
	return StdDev(estimates), nil
}
