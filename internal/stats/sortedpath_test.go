package stats

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

// shuffled returns a deterministic pseudo-random sample and its sorted
// copy, the fixture of every sorted-path equivalence test below.
func shuffled(n int, seed int64) (xs, sorted []float64) {
	rng := rand.New(rand.NewSource(seed))
	xs = make([]float64, n)
	for i := range xs {
		xs[i] = rng.ExpFloat64() * 55
	}
	sorted = append([]float64(nil), xs...)
	sort.Float64s(sorted)
	return xs, sorted
}

// TestSummarizeSortedMatchesSummarize pins the sorted path bit-identical
// to the cloning path: the analysis index swaps one for the other, so any
// divergence here would break the byte-identical report goldens.
func TestSummarizeSortedMatchesSummarize(t *testing.T) {
	xs, sorted := shuffled(10_000, 1)
	want, err := Summarize(xs)
	if err != nil {
		t.Fatal(err)
	}
	got, err := SummarizeSorted(sorted)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Errorf("SummarizeSorted = %+v, Summarize = %+v", got, want)
	}
}

func TestSummarizeSortedEdgeCases(t *testing.T) {
	if _, err := SummarizeSorted(nil); err != ErrEmpty {
		t.Errorf("empty sample: got %v, want ErrEmpty", err)
	}
	s, err := SummarizeSorted([]float64{1, math.NaN(), 3})
	if err != nil {
		t.Fatal(err)
	}
	if s.N != 3 || !math.IsNaN(s.Median) || !math.IsNaN(s.Mean) {
		t.Errorf("NaN sample must poison the summary, got %+v", s)
	}
}

// TestQuantilesSortedMatchesQuantiles pins the arena path to the cloning
// path across valid, invalid, and boundary probabilities.
func TestQuantilesSortedMatchesQuantiles(t *testing.T) {
	xs, sorted := shuffled(4_097, 2)
	ps := []float64{0, 0.25, 0.5, 0.75, 0.95, 1, -0.1, 1.1, math.NaN()}
	want := Quantiles(xs, ps)
	got := QuantilesSorted(sorted, ps)
	for i := range ps {
		if math.IsNaN(want[i]) != math.IsNaN(got[i]) || (!math.IsNaN(want[i]) && want[i] != got[i]) {
			t.Errorf("p=%v: QuantilesSorted=%v, Quantiles=%v", ps[i], got[i], want[i])
		}
	}
}

func TestQuantilesSortedPoisonsOnNaN(t *testing.T) {
	out := QuantilesSorted([]float64{1, 2, math.NaN()}, []float64{0.5})
	if !math.IsNaN(out[0]) {
		t.Errorf("NaN sample must poison quantiles, got %v", out[0])
	}
	out = QuantilesSorted(nil, []float64{0.5})
	if !math.IsNaN(out[0]) {
		t.Errorf("empty sample must poison quantiles, got %v", out[0])
	}
}

// TestSummarizeAllocs is the allocation regression gate of the ISSUE-3
// Summarize fix: the unsorted path may allocate exactly once (the clone
// it sorts), and the sorted path not at all. A second clone creeping back
// in fails here before it shows up in the benchmark trajectory.
func TestSummarizeAllocs(t *testing.T) {
	xs, sorted := shuffled(10_000, 3)
	if allocs := testing.AllocsPerRun(50, func() {
		if _, err := Summarize(xs); err != nil {
			t.Fatal(err)
		}
	}); allocs > 1 {
		t.Errorf("Summarize allocated %v times per run, want <= 1 (the sort clone)", allocs)
	}
	if allocs := testing.AllocsPerRun(50, func() {
		if _, err := SummarizeSorted(sorted); err != nil {
			t.Fatal(err)
		}
	}); allocs != 0 {
		t.Errorf("SummarizeSorted allocated %v times per run, want 0", allocs)
	}
}

// TestQuantilesSortedAllocs pins the multi-quantile arena path to its
// single output-slice allocation: the P25/P50/P75 triple that used to
// cost three clones and three sorts now costs one 3-element slice.
func TestQuantilesSortedAllocs(t *testing.T) {
	_, sorted := shuffled(10_000, 4)
	ps := []float64{0.25, 0.5, 0.75, 0.95}
	if allocs := testing.AllocsPerRun(50, func() {
		QuantilesSorted(sorted, ps)
	}); allocs > 1 {
		t.Errorf("QuantilesSorted allocated %v times per run, want <= 1 (the output slice)", allocs)
	}
}

func TestNewECDFSorted(t *testing.T) {
	xs, sorted := shuffled(1_000, 5)
	want, err := NewECDF(xs)
	if err != nil {
		t.Fatal(err)
	}
	got, err := NewECDFSorted(sorted)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []float64{0, 0.25, 0.5, 0.75, 1} {
		if got.Quantile(p) != want.Quantile(p) {
			t.Errorf("p=%v: sorted ECDF quantile %v, cloning ECDF %v", p, got.Quantile(p), want.Quantile(p))
		}
	}
	if got.N() != want.N() || got.Min() != want.Min() || got.Max() != want.Max() {
		t.Error("sorted ECDF endpoints diverged from cloning constructor")
	}
	if _, err := NewECDFSorted(nil); err != ErrEmpty {
		t.Errorf("empty input: got %v, want ErrEmpty", err)
	}
	if _, err := NewECDFSorted([]float64{2, 1}); err != ErrUnsorted {
		t.Errorf("unsorted input: got %v, want ErrUnsorted", err)
	}
}

// TestNewECDFSortedAliasesInput documents the zero-copy contract: the
// sorted constructor must NOT clone, so the index arena is shared rather
// than duplicated per consumer.
func TestNewECDFSortedAliasesInput(t *testing.T) {
	sorted := []float64{1, 2, 3}
	e, err := NewECDFSorted(sorted)
	if err != nil {
		t.Fatal(err)
	}
	if allocs := testing.AllocsPerRun(50, func() {
		if _, err := NewECDFSorted(sorted); err != nil {
			t.Fatal(err)
		}
	}); allocs > 1 {
		t.Errorf("NewECDFSorted allocated %v times per run, want <= 1 (the ECDF header)", allocs)
	}
	if e.Quantile(0.5) != 2 {
		t.Errorf("median = %v, want 2", e.Quantile(0.5))
	}
}
