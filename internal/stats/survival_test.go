package stats

import (
	"math"
	"testing"
)

func obsList(durations ...float64) []Observation {
	out := make([]Observation, len(durations))
	for i, d := range durations {
		out[i] = Observation{Duration: d}
	}
	return out
}

func TestKaplanMeierEmpty(t *testing.T) {
	if _, err := KaplanMeier(nil); err != ErrEmpty {
		t.Errorf("error = %v, want ErrEmpty", err)
	}
}

func TestKaplanMeierNoCensoring(t *testing.T) {
	// Without censoring, KM equals the empirical survival function.
	curve, err := KaplanMeier(obsList(1, 2, 3, 4))
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{0.75, 0.5, 0.25, 0}
	if len(curve) != 4 {
		t.Fatalf("curve = %+v", curve)
	}
	for i, pt := range curve {
		if !almostEqual(pt.Survival, want[i], 1e-12) {
			t.Errorf("S(%v) = %v, want %v", pt.Time, pt.Survival, want[i])
		}
	}
}

func TestKaplanMeierWithCensoring(t *testing.T) {
	// Classic worked example: events at 1 and 3, censored at 2.
	// S(1) = 1 - 1/3 = 2/3. At t=3 only 1 at risk: S(3) = 2/3 * 0 = 0.
	obs := []Observation{
		{Duration: 1},
		{Duration: 2, Censored: true},
		{Duration: 3},
	}
	curve, err := KaplanMeier(obs)
	if err != nil {
		t.Fatal(err)
	}
	if len(curve) != 2 {
		t.Fatalf("curve = %+v", curve)
	}
	if !almostEqual(curve[0].Survival, 2.0/3, 1e-12) {
		t.Errorf("S(1) = %v, want 2/3", curve[0].Survival)
	}
	if !almostEqual(curve[1].Survival, 0, 1e-12) {
		t.Errorf("S(3) = %v, want 0", curve[1].Survival)
	}
	if curve[1].AtRisk != 1 {
		t.Errorf("at-risk at t=3 = %d, want 1", curve[1].AtRisk)
	}
}

func TestKaplanMeierTiedEvents(t *testing.T) {
	curve, err := KaplanMeier(obsList(2, 2, 5))
	if err != nil {
		t.Fatal(err)
	}
	if len(curve) != 2 {
		t.Fatalf("curve = %+v", curve)
	}
	if !almostEqual(curve[0].Survival, 1.0/3, 1e-12) || curve[0].Events != 2 {
		t.Errorf("tied step = %+v", curve[0])
	}
}

func TestKaplanMeierAllCensored(t *testing.T) {
	obs := []Observation{{Duration: 1, Censored: true}, {Duration: 2, Censored: true}}
	curve, err := KaplanMeier(obs)
	if err != nil {
		t.Fatal(err)
	}
	if len(curve) != 1 || curve[0].Survival != 1 {
		t.Errorf("all-censored curve = %+v, want flat at 1", curve)
	}
}

func TestMedianSurvivalTime(t *testing.T) {
	curve, _ := KaplanMeier(obsList(10, 20, 30, 40))
	med, ok := MedianSurvivalTime(curve)
	if !ok || med != 20 {
		t.Errorf("median survival = %v (ok=%v), want 20", med, ok)
	}
	flat := []SurvivalPoint{{Time: 5, Survival: 0.9}}
	if _, ok := MedianSurvivalTime(flat); ok {
		t.Error("median of a curve never reaching 0.5 should report ok=false")
	}
}

func TestRestrictedMeanSurvival(t *testing.T) {
	// Single event at t=2 among 2 observations... use simple exact case:
	// events at 1 and 3. S=1 on [0,1), 0.5 on [1,3), 0 after.
	curve, _ := KaplanMeier(obsList(1, 3))
	// RMST to tau=3: 1*1 + 0.5*2 = 2.
	if got := RestrictedMeanSurvival(curve, 3); !almostEqual(got, 2, 1e-12) {
		t.Errorf("RMST(3) = %v, want 2", got)
	}
	// RMST to tau=2: 1*1 + 0.5*1 = 1.5.
	if got := RestrictedMeanSurvival(curve, 2); !almostEqual(got, 1.5, 1e-12) {
		t.Errorf("RMST(2) = %v, want 1.5", got)
	}
	// RMST beyond the last event stays flat (survival 0 contributes
	// nothing).
	if got := RestrictedMeanSurvival(curve, 100); !almostEqual(got, 2, 1e-12) {
		t.Errorf("RMST(100) = %v, want 2", got)
	}
}

// Survival curves are non-increasing and within [0, 1].
func TestKaplanMeierMonotone(t *testing.T) {
	obs := []Observation{
		{Duration: 3}, {Duration: 1, Censored: true}, {Duration: 7},
		{Duration: 2}, {Duration: 7, Censored: true}, {Duration: 10},
		{Duration: 4}, {Duration: 4},
	}
	curve, err := KaplanMeier(obs)
	if err != nil {
		t.Fatal(err)
	}
	prev := 1.0
	for _, pt := range curve {
		if pt.Survival > prev+1e-12 || pt.Survival < 0 || pt.Survival > 1 {
			t.Errorf("non-monotone survival at %v: %v after %v", pt.Time, pt.Survival, prev)
		}
		prev = pt.Survival
	}
}

func TestNelsonAalenNoCensoring(t *testing.T) {
	// Events at 1, 2, 3: H = 1/3, then +1/2, then +1/1.
	curve, err := NelsonAalen(obsList(1, 2, 3))
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{1.0 / 3, 1.0/3 + 1.0/2, 1.0/3 + 1.0/2 + 1}
	if len(curve) != 3 {
		t.Fatalf("curve = %+v", curve)
	}
	for i, pt := range curve {
		if !almostEqual(pt.CumulativeHazard, want[i], 1e-12) {
			t.Errorf("H(%v) = %v, want %v", pt.Time, pt.CumulativeHazard, want[i])
		}
	}
}

func TestNelsonAalenWithCensoring(t *testing.T) {
	obs := []Observation{
		{Duration: 1},
		{Duration: 2, Censored: true},
		{Duration: 3},
	}
	curve, err := NelsonAalen(obs)
	if err != nil {
		t.Fatal(err)
	}
	// H(1) = 1/3; the censored unit leaves, so H(3) = 1/3 + 1/1.
	if len(curve) != 2 {
		t.Fatalf("curve = %+v", curve)
	}
	if !almostEqual(curve[1].CumulativeHazard, 1.0/3+1, 1e-12) {
		t.Errorf("H(3) = %v, want 4/3", curve[1].CumulativeHazard)
	}
}

func TestNelsonAalenMonotone(t *testing.T) {
	obs := obsList(5, 1, 3, 3, 8, 2, 9, 4)
	curve, err := NelsonAalen(obs)
	if err != nil {
		t.Fatal(err)
	}
	prev := 0.0
	for _, pt := range curve {
		if pt.CumulativeHazard < prev {
			t.Errorf("hazard decreased at t=%v", pt.Time)
		}
		prev = pt.CumulativeHazard
	}
	// Exponential-consistency: with no censoring, exp(-H) tracks the KM
	// survival estimate to within the usual discrete-estimator gap.
	km, err := KaplanMeier(obs)
	if err != nil {
		t.Fatal(err)
	}
	for i := range curve {
		if i >= len(km) {
			break
		}
		sNA := math.Exp(-curve[i].CumulativeHazard)
		if km[i].Survival > 0 && (sNA < km[i].Survival*0.7 || sNA > km[i].Survival*1.5) {
			t.Errorf("exp(-H)=%v far from KM %v at t=%v", sNA, km[i].Survival, curve[i].Time)
		}
	}
}

func TestNelsonAalenEmpty(t *testing.T) {
	if _, err := NelsonAalen(nil); err != ErrEmpty {
		t.Errorf("error = %v, want ErrEmpty", err)
	}
	// All censored: flat zero hazard.
	curve, err := NelsonAalen([]Observation{{Duration: 5, Censored: true}})
	if err != nil {
		t.Fatal(err)
	}
	if len(curve) != 1 || curve[0].CumulativeHazard != 0 {
		t.Errorf("all-censored curve = %+v", curve)
	}
}
