package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestPearsonPerfect(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	ys := []float64{2, 4, 6, 8, 10}
	r, err := Pearson(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(r, 1, 1e-12) {
		t.Errorf("Pearson = %v, want 1", r)
	}
	neg := []float64{10, 8, 6, 4, 2}
	r, _ = Pearson(xs, neg)
	if !almostEqual(r, -1, 1e-12) {
		t.Errorf("Pearson = %v, want -1", r)
	}
}

func TestPearsonErrors(t *testing.T) {
	if _, err := Pearson([]float64{1}, []float64{1, 2}); err != ErrMismatch {
		t.Errorf("mismatch error = %v", err)
	}
	if _, err := Pearson([]float64{1}, []float64{2}); err != ErrEmpty {
		t.Errorf("too-small error = %v", err)
	}
	r, err := Pearson([]float64{1, 1, 1}, []float64{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsNaN(r) {
		t.Errorf("zero-variance Pearson = %v, want NaN", r)
	}
}

func TestSpearmanMonotone(t *testing.T) {
	// Monotone but nonlinear: Spearman must be exactly 1.
	xs := []float64{1, 2, 3, 4, 5}
	ys := []float64{1, 8, 27, 64, 125}
	rho, err := Spearman(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(rho, 1, 1e-12) {
		t.Errorf("Spearman = %v, want 1", rho)
	}
}

func TestRanksWithTies(t *testing.T) {
	got := Ranks([]float64{10, 20, 20, 30})
	want := []float64{1, 2.5, 2.5, 4}
	for i := range want {
		if !almostEqual(got[i], want[i], 1e-12) {
			t.Fatalf("Ranks = %v, want %v", got, want)
		}
	}
}

func TestRanksAllTied(t *testing.T) {
	got := Ranks([]float64{5, 5, 5})
	for _, r := range got {
		if !almostEqual(r, 2, 1e-12) {
			t.Fatalf("Ranks all-tied = %v, want all 2", got)
		}
	}
}

func TestAutoCorrelation(t *testing.T) {
	// Lag 0 is always 1.
	xs := []float64{1, 5, 2, 8, 3, 9, 1, 7}
	if got := AutoCorrelation(xs, 0); !almostEqual(got, 1, 1e-12) {
		t.Errorf("lag-0 autocorrelation = %v, want 1", got)
	}
	// Alternating series has strongly negative lag-1 autocorrelation.
	alt := []float64{1, -1, 1, -1, 1, -1, 1, -1}
	if got := AutoCorrelation(alt, 1); got >= 0 {
		t.Errorf("alternating lag-1 autocorrelation = %v, want negative", got)
	}
	if !math.IsNaN(AutoCorrelation(xs, -1)) || !math.IsNaN(AutoCorrelation(xs, len(xs))) {
		t.Error("invalid lag should be NaN")
	}
	if !math.IsNaN(AutoCorrelation([]float64{3, 3, 3}, 1)) {
		t.Error("zero-variance autocorrelation should be NaN")
	}
}

// Property: Pearson is bounded in [-1, 1] and symmetric.
func TestPearsonBoundsProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(50)
		xs := make([]float64, n)
		ys := make([]float64, n)
		for i := range xs {
			xs[i] = r.NormFloat64()
			ys[i] = r.NormFloat64()
		}
		a, err := Pearson(xs, ys)
		if err != nil {
			return false
		}
		b, err := Pearson(ys, xs)
		if err != nil {
			return false
		}
		if math.IsNaN(a) {
			return math.IsNaN(b)
		}
		return a >= -1-1e-9 && a <= 1+1e-9 && almostEqual(a, b, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: Spearman is invariant under strictly monotone transforms of
// either variable.
func TestSpearmanInvarianceProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 3 + r.Intn(30)
		xs := make([]float64, n)
		ys := make([]float64, n)
		for i := range xs {
			xs[i] = r.NormFloat64()
			ys[i] = r.NormFloat64()
		}
		a, err := Spearman(xs, ys)
		if err != nil {
			return false
		}
		cubed := make([]float64, n)
		for i, x := range xs {
			cubed[i] = x * x * x // strictly monotone
		}
		b, err := Spearman(cubed, ys)
		if err != nil {
			return false
		}
		if math.IsNaN(a) {
			return math.IsNaN(b)
		}
		return almostEqual(a, b, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}
