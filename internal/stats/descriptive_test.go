package stats

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool {
	if math.IsNaN(a) || math.IsNaN(b) {
		return math.IsNaN(a) && math.IsNaN(b)
	}
	return math.Abs(a-b) <= tol
}

func TestSum(t *testing.T) {
	tests := []struct {
		name string
		in   []float64
		want float64
	}{
		{"empty", nil, 0},
		{"single", []float64{3.5}, 3.5},
		{"mixed signs", []float64{1, -1, 2, -2, 5}, 5},
		// Naive accumulation loses the two 1s to rounding and returns 0;
		// Kahan compensation recovers the exact value 2.
		{"catastrophic cancellation", []float64{1e16, 1, 1, -1e16}, 2},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := Sum(tt.in); got != tt.want {
				t.Errorf("Sum(%v) = %v, want %v", tt.in, got, tt.want)
			}
		})
	}
}

func TestMean(t *testing.T) {
	tests := []struct {
		name string
		in   []float64
		want float64
	}{
		{"empty is NaN", nil, math.NaN()},
		{"single", []float64{7}, 7},
		{"uniform", []float64{2, 4, 6, 8}, 5},
		{"negative", []float64{-3, 3}, 0},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := Mean(tt.in); !almostEqual(got, tt.want, 1e-12) {
				t.Errorf("Mean(%v) = %v, want %v", tt.in, got, tt.want)
			}
		})
	}
}

func TestVarianceAndStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	// Known sample variance (n-1): mean=5, ss=32, var=32/7.
	wantVar := 32.0 / 7
	if got := Variance(xs); !almostEqual(got, wantVar, 1e-12) {
		t.Errorf("Variance = %v, want %v", got, wantVar)
	}
	if got := StdDev(xs); !almostEqual(got, math.Sqrt(wantVar), 1e-12) {
		t.Errorf("StdDev = %v, want %v", got, math.Sqrt(wantVar))
	}
	if !math.IsNaN(Variance([]float64{1})) {
		t.Error("Variance of single observation should be NaN")
	}
	if !math.IsNaN(Variance(nil)) {
		t.Error("Variance of empty sample should be NaN")
	}
}

func TestMinMax(t *testing.T) {
	xs := []float64{3, -1, 4, 1, 5, -9, 2, 6}
	if got := Min(xs); got != -9 {
		t.Errorf("Min = %v, want -9", got)
	}
	if got := Max(xs); got != 6 {
		t.Errorf("Max = %v, want 6", got)
	}
	if !math.IsNaN(Min(nil)) || !math.IsNaN(Max(nil)) {
		t.Error("Min/Max of empty sample should be NaN")
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	tests := []struct {
		p    float64
		want float64
	}{
		{0, 1},
		{1, 10},
		{0.5, 5.5},
		{0.25, 3.25},
		{0.75, 7.75},
	}
	for _, tt := range tests {
		if got := Quantile(xs, tt.p); !almostEqual(got, tt.want, 1e-12) {
			t.Errorf("Quantile(p=%v) = %v, want %v", tt.p, got, tt.want)
		}
	}
	if !math.IsNaN(Quantile(xs, -0.1)) || !math.IsNaN(Quantile(xs, 1.1)) {
		t.Error("Quantile outside [0,1] should be NaN")
	}
	if !math.IsNaN(Quantile(nil, 0.5)) {
		t.Error("Quantile of empty sample should be NaN")
	}
	if got := Quantile([]float64{42}, 0.73); got != 42 {
		t.Errorf("Quantile of singleton = %v, want 42", got)
	}
}

func TestQuantileDoesNotMutateInput(t *testing.T) {
	xs := []float64{5, 1, 4, 2, 3}
	orig := append([]float64(nil), xs...)
	Quantile(xs, 0.5)
	for i := range xs {
		if xs[i] != orig[i] {
			t.Fatalf("Quantile mutated input at %d: %v != %v", i, xs[i], orig[i])
		}
	}
}

func TestQuantiles(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	got := Quantiles(xs, []float64{0, 0.5, 1, -1})
	if got[0] != 1 || got[2] != 4 {
		t.Errorf("Quantiles endpoints = %v", got)
	}
	if !almostEqual(got[1], 2.5, 1e-12) {
		t.Errorf("Quantiles median = %v, want 2.5", got[1])
	}
	if !math.IsNaN(got[3]) {
		t.Error("invalid probability should be NaN")
	}
}

func TestSummarize(t *testing.T) {
	xs := []float64{10, 20, 30, 40, 50}
	s, err := Summarize(xs)
	if err != nil {
		t.Fatal(err)
	}
	if s.N != 5 || s.Min != 10 || s.Max != 50 || s.Median != 30 || s.Mean != 30 {
		t.Errorf("Summary = %+v", s)
	}
	if !almostEqual(s.Q1, 20, 1e-12) || !almostEqual(s.Q3, 40, 1e-12) {
		t.Errorf("quartiles = %v, %v", s.Q1, s.Q3)
	}
	if !almostEqual(s.IQR(), 20, 1e-12) {
		t.Errorf("IQR = %v, want 20", s.IQR())
	}
	if _, err := Summarize(nil); err != ErrEmpty {
		t.Errorf("Summarize(nil) error = %v, want ErrEmpty", err)
	}
}

func TestSummaryWhiskers(t *testing.T) {
	s := Summary{Min: 0, Q1: 10, Median: 15, Q3: 20, Max: 100}
	// IQR=10: whiskers at max(0, -5)=0 and min(100, 35)=35.
	if got := s.WhiskerLow(); got != 0 {
		t.Errorf("WhiskerLow = %v, want 0", got)
	}
	if got := s.WhiskerHigh(); got != 35 {
		t.Errorf("WhiskerHigh = %v, want 35", got)
	}
}

func TestGeometricMean(t *testing.T) {
	if got := GeometricMean([]float64{1, 100}); !almostEqual(got, 10, 1e-9) {
		t.Errorf("GeometricMean = %v, want 10", got)
	}
	if !math.IsNaN(GeometricMean([]float64{1, 0})) {
		t.Error("GeometricMean with zero should be NaN")
	}
	if !math.IsNaN(GeometricMean(nil)) {
		t.Error("GeometricMean of empty should be NaN")
	}
}

func TestCoefficientOfVariation(t *testing.T) {
	// Exponential-like data has CV near 1; constant data has CV 0... but
	// here just verify the definition.
	xs := []float64{10, 20, 30}
	want := StdDev(xs) / 20
	if got := CoefficientOfVariation(xs); !almostEqual(got, want, 1e-12) {
		t.Errorf("CV = %v, want %v", got, want)
	}
	if !math.IsNaN(CoefficientOfVariation([]float64{-1, 1})) {
		t.Error("CV with zero mean should be NaN")
	}
}

// Property: quantile is monotone in p and bounded by min/max.
func TestQuantileMonotoneProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(50)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = r.NormFloat64() * 100
		}
		prev := math.Inf(-1)
		for p := 0.0; p <= 1.0; p += 0.05 {
			q := Quantile(xs, p)
			if q < prev-1e-9 {
				return false
			}
			if q < Min(xs)-1e-9 || q > Max(xs)+1e-9 {
				return false
			}
			prev = q
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 200, Rand: rng}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// Property: mean lies within [min, max] and matches sum/n.
func TestMeanBoundsProperty(t *testing.T) {
	f := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) && math.Abs(x) < 1e12 {
				xs = append(xs, x)
			}
		}
		if len(xs) == 0 {
			return math.IsNaN(Mean(xs))
		}
		m := Mean(xs)
		return m >= Min(xs)-1e-6 && m <= Max(xs)+1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: Summarize agrees with direct quantile computation.
func TestSummarizeConsistencyProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(80)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = r.ExpFloat64() * 50
		}
		s, err := Summarize(xs)
		if err != nil {
			return false
		}
		sorted := append([]float64(nil), xs...)
		sort.Float64s(sorted)
		return almostEqual(s.Median, Quantile(xs, 0.5), 1e-9) &&
			almostEqual(s.Min, sorted[0], 0) &&
			almostEqual(s.Max, sorted[n-1], 0) &&
			s.Q1 <= s.Median+1e-9 && s.Median <= s.Q3+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
