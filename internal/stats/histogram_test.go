package stats

import (
	"math"
	"testing"
)

func TestNewHistogramErrors(t *testing.T) {
	if _, err := NewHistogram(0, 10, 0); err == nil {
		t.Error("expected error for zero bins")
	}
	if _, err := NewHistogram(5, 5, 3); err == nil {
		t.Error("expected error for empty range")
	}
	if _, err := NewHistogram(10, 5, 3); err == nil {
		t.Error("expected error for inverted range")
	}
}

func TestHistogramBinning(t *testing.T) {
	h, err := NewHistogram(0, 10, 5)
	if err != nil {
		t.Fatal(err)
	}
	h.AddAll([]float64{0, 1.9, 2, 4, 6, 8, 9.99})
	want := []int{2, 1, 1, 1, 2}
	for i, c := range h.Counts {
		if c != want[i] {
			t.Errorf("bin %d = %d, want %d (all: %v)", i, c, want[i], h.Counts)
		}
	}
	if h.Total() != 7 {
		t.Errorf("Total = %d, want 7", h.Total())
	}
}

func TestHistogramClamping(t *testing.T) {
	h, _ := NewHistogram(0, 10, 2)
	h.Add(-5)  // below range -> first bin
	h.Add(100) // above range -> last bin
	h.Add(10)  // exactly Hi -> last bin
	if h.Counts[0] != 1 || h.Counts[1] != 2 {
		t.Errorf("clamped counts = %v", h.Counts)
	}
}

func TestHistogramNaN(t *testing.T) {
	h, _ := NewHistogram(0, 10, 2)
	h.Add(math.NaN())
	h.Add(5)
	if h.Total() != 2 {
		t.Errorf("Total = %d, want 2 (NaN counted)", h.Total())
	}
	if h.Counts[0]+h.Counts[1] != 1 {
		t.Errorf("NaN should not land in a bucket: %v", h.Counts)
	}
}

func TestHistogramFractions(t *testing.T) {
	h, _ := NewHistogram(0, 4, 2)
	h.AddAll([]float64{1, 1, 3})
	fr := h.Fractions()
	if !almostEqual(fr[0], 2.0/3, 1e-12) || !almostEqual(fr[1], 1.0/3, 1e-12) {
		t.Errorf("Fractions = %v", fr)
	}
	empty, _ := NewHistogram(0, 1, 3)
	for _, f := range empty.Fractions() {
		if f != 0 {
			t.Errorf("empty histogram fractions = %v", empty.Fractions())
		}
	}
}

func TestHistogramGeometry(t *testing.T) {
	h, _ := NewHistogram(10, 20, 4)
	if got := h.BinWidth(); !almostEqual(got, 2.5, 1e-12) {
		t.Errorf("BinWidth = %v, want 2.5", got)
	}
	if got := h.BinCenter(0); !almostEqual(got, 11.25, 1e-12) {
		t.Errorf("BinCenter(0) = %v, want 11.25", got)
	}
	if got := h.BinCenter(3); !almostEqual(got, 18.75, 1e-12) {
		t.Errorf("BinCenter(3) = %v, want 18.75", got)
	}
}

func TestHistogramMode(t *testing.T) {
	h, _ := NewHistogram(0, 3, 3)
	h.AddAll([]float64{0.5, 1.5, 1.5, 2.5, 2.5})
	if got := h.Mode(); got != 1 {
		t.Errorf("Mode = %d, want 1 (ties break low)", got)
	}
}
