package stats

import (
	"math"
	"sort"
)

// MannWhitneyResult carries the two-sample rank-sum test outcome.
type MannWhitneyResult struct {
	// U is the Mann-Whitney U statistic of the first sample.
	U float64
	// Z is the normal approximation z-score (tie-corrected).
	Z float64
	// P is the two-sided asymptotic p-value.
	P float64
}

// MannWhitney performs the two-sided Mann-Whitney U test that the two
// samples come from the same distribution, using the normal approximation
// with tie correction (appropriate at the sample sizes of the per-category
// TTR comparisons). It returns ErrEmpty when either sample is empty.
func MannWhitney(xs, ys []float64) (MannWhitneyResult, error) {
	if len(xs) == 0 || len(ys) == 0 {
		return MannWhitneyResult{}, ErrEmpty
	}
	n1, n2 := float64(len(xs)), float64(len(ys))
	combined := make([]float64, 0, len(xs)+len(ys))
	combined = append(combined, xs...)
	combined = append(combined, ys...)
	ranks := Ranks(combined)

	var r1 float64
	for i := range xs {
		r1 += ranks[i]
	}
	u1 := r1 - n1*(n1+1)/2

	// Tie correction for the variance.
	sorted := append([]float64(nil), combined...)
	sort.Float64s(sorted)
	var tieSum float64
	n := len(sorted)
	for i := 0; i < n; {
		j := i
		for j < n && sorted[j] == sorted[i] {
			j++
		}
		t := float64(j - i)
		tieSum += t*t*t - t
		i = j
	}
	nn := n1 + n2
	variance := n1 * n2 / 12 * ((nn + 1) - tieSum/(nn*(nn-1)))
	res := MannWhitneyResult{U: u1}
	if variance <= 0 {
		// All observations tied: no evidence of difference.
		res.P = 1
		return res, nil
	}
	mean := n1 * n2 / 2
	// Continuity correction toward the mean.
	diff := u1 - mean
	switch {
	case diff > 0.5:
		diff -= 0.5
	case diff < -0.5:
		diff += 0.5
	default:
		diff = 0
	}
	res.Z = diff / math.Sqrt(variance)
	res.P = 2 * normalSurvival(math.Abs(res.Z))
	if res.P > 1 {
		res.P = 1
	}
	return res, nil
}

// normalSurvival returns P(Z > z) for a standard normal.
func normalSurvival(z float64) float64 {
	return 0.5 * math.Erfc(z/math.Sqrt2)
}

// KendallTau returns Kendall's tau-b rank correlation of the paired
// samples, with tie correction. It complements Spearman for the small
// monthly samples of the seasonal analysis.
func KendallTau(xs, ys []float64) (float64, error) {
	if len(xs) != len(ys) {
		return 0, ErrMismatch
	}
	n := len(xs)
	if n < 2 {
		return 0, ErrEmpty
	}
	var concordant, discordant, tiesX, tiesY int
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			dx := xs[i] - xs[j]
			dy := ys[i] - ys[j]
			switch {
			case dx == 0 && dy == 0:
				tiesX++
				tiesY++
			case dx == 0:
				tiesX++
			case dy == 0:
				tiesY++
			case (dx > 0) == (dy > 0):
				concordant++
			default:
				discordant++
			}
		}
	}
	pairs := n * (n - 1) / 2
	den := math.Sqrt(float64(pairs-tiesX)) * math.Sqrt(float64(pairs-tiesY))
	if den == 0 {
		return math.NaN(), nil
	}
	return float64(concordant-discordant) / den, nil
}

// Gini returns the Gini coefficient of the non-negative values: 0 for a
// perfectly even distribution, approaching 1 as the mass concentrates on
// few holders. The spatial analyses use it to quantify how unevenly
// failures concentrate on nodes and racks.
func Gini(values []float64) (float64, error) {
	if len(values) == 0 {
		return 0, ErrEmpty
	}
	sorted := append([]float64(nil), values...)
	sort.Float64s(sorted)
	var cumWeighted, total float64
	for i, v := range sorted {
		if v < 0 {
			return 0, ErrMismatch
		}
		cumWeighted += float64(i+1) * v
		total += v
	}
	if total == 0 {
		return 0, nil
	}
	n := float64(len(sorted))
	return (2*cumWeighted)/(n*total) - (n+1)/n, nil
}

// LorenzPoint is one point of a Lorenz curve: the poorest PopShare of
// holders own MassShare of the mass.
type LorenzPoint struct {
	PopShare  float64
	MassShare float64
}

// Lorenz returns the Lorenz curve of the non-negative values, one point
// per holder plus the origin.
func Lorenz(values []float64) ([]LorenzPoint, error) {
	if len(values) == 0 {
		return nil, ErrEmpty
	}
	sorted := append([]float64(nil), values...)
	sort.Float64s(sorted)
	var total float64
	for _, v := range sorted {
		if v < 0 {
			return nil, ErrMismatch
		}
		total += v
	}
	curve := make([]LorenzPoint, 0, len(sorted)+1)
	curve = append(curve, LorenzPoint{})
	var running float64
	n := float64(len(sorted))
	for i, v := range sorted {
		running += v
		mass := 0.0
		if total > 0 {
			mass = running / total
		}
		curve = append(curve, LorenzPoint{PopShare: float64(i+1) / n, MassShare: mass})
	}
	return curve, nil
}

// MannKendallResult is the non-parametric trend test outcome for a time
// series.
type MannKendallResult struct {
	// S is the Mann-Kendall statistic: sum of pairwise sign comparisons.
	S int
	// Z is the variance-normalized score (tie-corrected, with continuity
	// correction).
	Z float64
	// P is the two-sided asymptotic p-value; small values indicate a
	// monotone trend.
	P float64
}

// MannKendall tests a series for monotone trend. The rolling-MTBF
// analysis uses it to decide whether within-generation reliability drift
// is statistically real.
func MannKendall(series []float64) (MannKendallResult, error) {
	n := len(series)
	if n < 3 {
		return MannKendallResult{}, ErrEmpty
	}
	var s int
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			switch {
			case series[j] > series[i]:
				s++
			case series[j] < series[i]:
				s--
			}
		}
	}
	// Tie-corrected variance.
	counts := make(map[float64]int, n)
	for _, x := range series {
		counts[x]++
	}
	nf := float64(n)
	variance := nf * (nf - 1) * (2*nf + 5) / 18
	for _, t := range counts {
		if t > 1 {
			tf := float64(t)
			variance -= tf * (tf - 1) * (2*tf + 5) / 18
		}
	}
	res := MannKendallResult{S: s}
	if variance <= 0 {
		res.P = 1
		return res, nil
	}
	switch {
	case s > 0:
		res.Z = (float64(s) - 1) / math.Sqrt(variance)
	case s < 0:
		res.Z = (float64(s) + 1) / math.Sqrt(variance)
	}
	res.P = 2 * normalSurvival(math.Abs(res.Z))
	if res.P > 1 {
		res.P = 1
	}
	return res, nil
}
