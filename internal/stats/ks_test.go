package stats

import (
	"math"
	"math/rand"
	"testing"
)

func uniformCDF(x float64) float64 {
	switch {
	case x < 0:
		return 0
	case x > 1:
		return 1
	default:
		return x
	}
}

func TestKSOneSampleEmpty(t *testing.T) {
	if _, err := KSOneSample(nil, uniformCDF); err != ErrEmpty {
		t.Errorf("error = %v, want ErrEmpty", err)
	}
}

func TestKSOneSampleUniform(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	xs := make([]float64, 2000)
	for i := range xs {
		xs[i] = rng.Float64()
	}
	d, err := KSOneSample(xs, uniformCDF)
	if err != nil {
		t.Fatal(err)
	}
	// For n=2000 the 1% critical value is ~1.63/sqrt(n) ~ 0.036.
	if d > 0.04 {
		t.Errorf("KS for true uniform sample = %v, want < 0.04", d)
	}
}

func TestKSOneSampleDetectsMismatch(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	xs := make([]float64, 500)
	for i := range xs {
		xs[i] = rng.Float64() * rng.Float64() // concentrated near 0
	}
	d, err := KSOneSample(xs, uniformCDF)
	if err != nil {
		t.Fatal(err)
	}
	if d < 0.15 {
		t.Errorf("KS for non-uniform sample = %v, want clearly > 0.15", d)
	}
}

func TestKSOneSampleExactSmall(t *testing.T) {
	// Single point at 0.5 under uniform: D = max(|0.5-0|, |1-0.5|) = 0.5.
	d, err := KSOneSample([]float64{0.5}, uniformCDF)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(d, 0.5, 1e-12) {
		t.Errorf("D = %v, want 0.5", d)
	}
}

func TestKSTwoSampleIdentical(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	d, err := KSTwoSample(xs, xs)
	if err != nil {
		t.Fatal(err)
	}
	if d != 0 {
		t.Errorf("KS of identical samples = %v, want 0", d)
	}
}

func TestKSTwoSampleDisjoint(t *testing.T) {
	d, err := KSTwoSample([]float64{1, 2, 3}, []float64{10, 11, 12})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(d, 1, 1e-12) {
		t.Errorf("KS of disjoint samples = %v, want 1", d)
	}
}

func TestKSTwoSampleEmpty(t *testing.T) {
	if _, err := KSTwoSample(nil, []float64{1}); err != ErrEmpty {
		t.Errorf("error = %v, want ErrEmpty", err)
	}
}

func TestKSTwoSampleSymmetric(t *testing.T) {
	a := []float64{1, 3, 5, 7}
	b := []float64{2, 3, 4}
	d1, _ := KSTwoSample(a, b)
	d2, _ := KSTwoSample(b, a)
	if !almostEqual(d1, d2, 1e-12) {
		t.Errorf("KS not symmetric: %v vs %v", d1, d2)
	}
}

func TestKSPValue(t *testing.T) {
	// Tiny statistic: p near 1. Huge statistic: p near 0.
	if p := KSPValue(0.001, 100); p < 0.99 {
		t.Errorf("p-value for tiny D = %v, want ~1", p)
	}
	if p := KSPValue(0.9, 100); p > 1e-6 {
		t.Errorf("p-value for huge D = %v, want ~0", p)
	}
	if p := KSPValue(0.5, 0); p != 1 {
		t.Errorf("p-value with n=0 = %v, want 1", p)
	}
	// Monotone decreasing in D.
	prev := 1.1
	for d := 0.05; d <= 0.5; d += 0.05 {
		p := KSPValue(d, 50)
		if p > prev {
			t.Errorf("p-value not monotone at D=%v: %v > %v", d, p, prev)
		}
		if p < 0 || p > 1 {
			t.Errorf("p-value out of range at D=%v: %v", d, p)
		}
		prev = p
	}
}

func TestKSPValueKnownValue(t *testing.T) {
	// lambda = 1 gives Q ~ 0.27; with the Stephens correction n -> large
	// makes lambda ~ sqrt(n)*d, so pick d = 1/sqrt(n) with large n.
	n := 1e6
	d := 1 / math.Sqrt(n)
	p := KSPValue(d, n)
	if p < 0.25 || p > 0.29 {
		t.Errorf("p-value at lambda~1 = %v, want ~0.27", p)
	}
}
