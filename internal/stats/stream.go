// Streaming, mergeable sketches for the columnar data plane: a
// constant-memory consumer (textreport.StreamDigest, or any BlockReader
// loop) folds each block into per-block sketches and merges them, never
// holding the sample itself. Three summaries cover the digest's needs:
// Welford (exact mean/variance), TDigest (approximate quantiles with a
// documented rank-error bound), and ECDFSketch (a capped weighted ECDF
// for distribution overlays). All three follow the package NaN policy:
// a NaN observation poisons every derived statistic to NaN.
package stats

import (
	"math"
	"sort"
)

// Welford is a streaming mean/variance accumulator (Welford's online
// algorithm, merged pairwise via the Chan et al. parallel update). The
// zero value is an empty accumulator ready for use. Mean and variance
// are exact up to floating-point rounding — unlike the quantile
// sketches, Welford trades nothing for streaming.
type Welford struct {
	n      int64
	mean   float64
	m2     float64
	hasNaN bool
}

// Observe folds one sample into the accumulator.
func (w *Welford) Observe(x float64) {
	if math.IsNaN(x) {
		w.hasNaN = true
	}
	w.n++
	delta := x - w.mean
	w.mean += delta / float64(w.n)
	w.m2 += delta * (x - w.mean)
}

// Merge folds another accumulator into w, as if every sample observed by
// o had been observed by w.
func (w *Welford) Merge(o Welford) {
	if o.n == 0 {
		w.hasNaN = w.hasNaN || o.hasNaN
		return
	}
	if w.n == 0 {
		*w = o
		return
	}
	n1, n2 := float64(w.n), float64(o.n)
	delta := o.mean - w.mean
	total := n1 + n2
	w.mean += delta * n2 / total
	w.m2 += o.m2 + delta*delta*n1*n2/total
	w.n += o.n
	w.hasNaN = w.hasNaN || o.hasNaN
}

// Count returns the number of samples observed.
func (w *Welford) Count() int64 { return w.n }

// Mean returns the sample mean: NaN when empty or poisoned.
func (w *Welford) Mean() float64 {
	if w.n == 0 || w.hasNaN {
		return math.NaN()
	}
	return w.mean
}

// Variance returns the unbiased (n-1) sample variance, matching the
// package-level Variance convention: NaN for fewer than two samples or
// a poisoned accumulator.
func (w *Welford) Variance() float64 {
	if w.n < 2 || w.hasNaN {
		return math.NaN()
	}
	return w.m2 / float64(w.n-1)
}

// StdDev returns the unbiased sample standard deviation.
func (w *Welford) StdDev() float64 { return math.Sqrt(w.Variance()) }

// centroid is one weighted point of a TDigest or ECDFSketch.
type centroid struct {
	mean   float64
	weight float64
}

// TDigest is a merging t-digest (Dunning's k1 arcsine scale function):
// a bounded set of weighted centroids whose capacity concentrates at the
// distribution tails, so extreme quantiles stay sharp while the sketch
// itself stays O(compression) regardless of sample count. Quantile rank
// error is about 4·q·(1−q)/δ for compression δ — with the default
// δ = 100, under 1% at the median and tighter toward the tails (the
// accuracy tests in stream_test.go pin this against the exact sorted
// quantiles). Use NewTDigest; the zero value is not ready.
type TDigest struct {
	compression float64
	processed   []centroid // sorted by mean, compacted
	buffer      []centroid // unsorted incoming points
	total       float64    // processed + buffered weight
	min, max    float64
	count       int64
	hasNaN      bool
	scratch     []centroid
}

// DefaultTDigestCompression is the δ used by NewTDigest when the caller
// passes 0: ~1% worst-case (median) rank error in ≤ ~200 centroids.
const DefaultTDigestCompression = 100

// NewTDigest returns an empty t-digest with the given compression δ
// (0 means DefaultTDigestCompression).
func NewTDigest(compression float64) *TDigest {
	if compression <= 0 {
		compression = DefaultTDigestCompression
	}
	bufCap := int(8 * compression)
	return &TDigest{
		compression: compression,
		buffer:      make([]centroid, 0, bufCap),
		min:         math.Inf(1),
		max:         math.Inf(-1),
	}
}

// Observe folds one sample into the digest.
func (t *TDigest) Observe(x float64) {
	if math.IsNaN(x) {
		t.hasNaN = true
		t.count++
		return
	}
	t.buffer = append(t.buffer, centroid{mean: x, weight: 1})
	t.total++
	t.count++
	if x < t.min {
		t.min = x
	}
	if x > t.max {
		t.max = x
	}
	if len(t.buffer) == cap(t.buffer) {
		t.process()
	}
}

// Merge folds another digest into t. The result summarizes the union of
// both sample streams; merging block-local digests is how a BlockReader
// consumer builds the whole-trace quantile view.
func (t *TDigest) Merge(o *TDigest) {
	if o == nil {
		return
	}
	t.hasNaN = t.hasNaN || o.hasNaN
	t.count += o.count - int64(o.total) // NaN observations carry no weight
	for _, c := range o.processed {
		t.add(c)
	}
	for _, c := range o.buffer {
		t.add(c)
	}
	if o.total > 0 {
		if o.min < t.min {
			t.min = o.min
		}
		if o.max > t.max {
			t.max = o.max
		}
	}
}

// add appends a weighted centroid, processing the buffer when full.
func (t *TDigest) add(c centroid) {
	t.buffer = append(t.buffer, c)
	t.total += c.weight
	t.count += int64(c.weight)
	if len(t.buffer) == cap(t.buffer) {
		t.process()
	}
}

// process merges the buffer into the compacted centroid list: sort,
// merge the two sorted runs, then re-compact under the k1 scale bound.
func (t *TDigest) process() {
	if len(t.buffer) == 0 {
		return
	}
	sort.Slice(t.buffer, func(i, j int) bool { return t.buffer[i].mean < t.buffer[j].mean })
	merged := t.scratch[:0]
	i, j := 0, 0
	for i < len(t.processed) && j < len(t.buffer) {
		if t.processed[i].mean <= t.buffer[j].mean {
			merged = append(merged, t.processed[i])
			i++
		} else {
			merged = append(merged, t.buffer[j])
			j++
		}
	}
	merged = append(merged, t.processed[i:]...)
	merged = append(merged, t.buffer[j:]...)
	t.buffer = t.buffer[:0]

	// Compact: accumulate adjacent centroids while the merged centroid
	// stays within one unit of the k1 scale k(q) = δ/(2π)·asin(2q−1).
	out := t.processed[:0]
	var wSoFar float64
	cur := merged[0]
	for _, c := range merged[1:] {
		q0 := wSoFar / t.total
		q2 := (wSoFar + cur.weight + c.weight) / t.total
		if t.scaleK(q2)-t.scaleK(q0) <= 1 {
			w := cur.weight + c.weight
			cur.mean += (c.mean - cur.mean) * c.weight / w
			cur.weight = w
		} else {
			wSoFar += cur.weight
			out = append(out, cur)
			cur = c
		}
	}
	out = append(out, cur)
	t.processed = out
	t.scratch = merged[:0]
}

// scaleK is the k1 scale function.
func (t *TDigest) scaleK(q float64) float64 {
	if q < 0 {
		q = 0
	} else if q > 1 {
		q = 1
	}
	return t.compression / (2 * math.Pi) * math.Asin(2*q-1)
}

// Count returns the number of observations (including NaNs).
func (t *TDigest) Count() int64 { return t.count }

// Min and Max return the exact sample extremes (NaN when empty or
// poisoned — extremes of a NaN-containing sample are as undefined as
// its quantiles).
func (t *TDigest) Min() float64 {
	if t.total == 0 || t.hasNaN {
		return math.NaN()
	}
	return t.min
}

func (t *TDigest) Max() float64 {
	if t.total == 0 || t.hasNaN {
		return math.NaN()
	}
	return t.max
}

// Quantile returns the approximate p-quantile. It returns NaN when the
// digest is empty, poisoned by NaN, or p is outside [0, 1]. The exact
// sample min/max anchor the extreme quantiles, so p = 0 and p = 1 are
// exact.
func (t *TDigest) Quantile(p float64) float64 {
	if t.total == 0 || t.hasNaN || math.IsNaN(p) || p < 0 || p > 1 {
		return math.NaN()
	}
	t.process()
	cs := t.processed
	if len(cs) == 1 {
		return cs[0].mean
	}
	target := p * t.total
	// Centroid i covers cumulative weight (c_i − w_i/2, c_i + w_i/2]
	// around its midpoint; interpolate linearly between midpoints and
	// anchor the ends at the exact extremes.
	var cum float64
	for i, c := range cs {
		mid := cum + c.weight/2
		if target <= mid {
			if i == 0 {
				// Below the first midpoint: interpolate from the minimum.
				if c.weight <= 1 {
					return t.min
				}
				frac := target / mid
				return t.min + frac*(c.mean-t.min)
			}
			prev := cs[i-1]
			prevMid := cum - prev.weight/2
			frac := (target - prevMid) / (mid - prevMid)
			return prev.mean + frac*(c.mean-prev.mean)
		}
		cum += c.weight
	}
	// Above the last midpoint: interpolate toward the maximum.
	last := cs[len(cs)-1]
	mid := t.total - last.weight/2
	if last.weight <= 1 || t.total == mid {
		return t.max
	}
	frac := (target - mid) / (t.total - mid)
	return last.mean + frac*(t.max-last.mean)
}

// ECDFSketch is a block-mergeable, capped-size approximation of an
// empirical CDF: at most K weighted points, compacted by collapsing
// rank-adjacent pairs (weighted mean, summed weight) whenever the point
// set overflows. Each compaction halves resolution locally, so after
// streaming n samples the rank error is about log2(n/K)/K — with the
// default K = 512 and n = 10⁶, under 2% (pinned empirically by the
// accuracy tests). For exact ECDFs over in-memory samples use NewECDF;
// this sketch exists for the streaming path where the sample never
// materializes. Use NewECDFSketch; the zero value is not ready.
type ECDFSketch struct {
	cap    int
	points []centroid // sorted by mean
	buf    []float64  // unsorted incoming samples
	total  float64
	count  int64
	hasNaN bool
}

// DefaultECDFSketchSize is the point cap used when NewECDFSketch is
// given 0.
const DefaultECDFSketchSize = 512

// NewECDFSketch returns an empty sketch keeping at most k weighted
// points (0 means DefaultECDFSketchSize; minimum 8).
func NewECDFSketch(k int) *ECDFSketch {
	if k <= 0 {
		k = DefaultECDFSketchSize
	}
	if k < 8 {
		k = 8
	}
	return &ECDFSketch{cap: k, buf: make([]float64, 0, k)}
}

// Observe folds one sample into the sketch.
func (e *ECDFSketch) Observe(x float64) {
	e.count++
	if math.IsNaN(x) {
		e.hasNaN = true
		return
	}
	e.buf = append(e.buf, x)
	e.total++
	if len(e.buf) == cap(e.buf) {
		e.flush()
	}
}

// Merge folds another sketch into e.
func (e *ECDFSketch) Merge(o *ECDFSketch) {
	if o == nil {
		return
	}
	e.hasNaN = e.hasNaN || o.hasNaN
	e.count += o.count
	e.flush()
	pts := append(append([]centroid(nil), o.points...), floatCentroids(o.buf)...)
	sort.Slice(pts, func(i, j int) bool { return pts[i].mean < pts[j].mean })
	e.points = mergeSortedCentroids(e.points, pts)
	e.total += o.total
	e.compact()
}

func floatCentroids(xs []float64) []centroid {
	out := make([]centroid, len(xs))
	for i, x := range xs {
		out[i] = centroid{mean: x, weight: 1}
	}
	return out
}

// flush sorts the buffer and merges it into the point set.
func (e *ECDFSketch) flush() {
	if len(e.buf) == 0 {
		return
	}
	sort.Float64s(e.buf)
	e.points = mergeSortedCentroids(e.points, floatCentroids(e.buf))
	e.buf = e.buf[:0]
	e.compact()
}

// mergeSortedCentroids merges two mean-sorted centroid runs.
func mergeSortedCentroids(a, b []centroid) []centroid {
	out := make([]centroid, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		if a[i].mean <= b[j].mean {
			out = append(out, a[i])
			i++
		} else {
			out = append(out, b[j])
			j++
		}
	}
	out = append(out, a[i:]...)
	return append(out, b[j:]...)
}

// compact halves the point set by collapsing rank-adjacent pairs until
// it fits the cap.
func (e *ECDFSketch) compact() {
	for len(e.points) > e.cap {
		half := e.points[:0]
		for i := 0; i+1 < len(e.points); i += 2 {
			a, b := e.points[i], e.points[i+1]
			w := a.weight + b.weight
			half = append(half, centroid{
				mean:   a.mean + (b.mean-a.mean)*b.weight/w,
				weight: w,
			})
		}
		if len(e.points)%2 == 1 {
			half = append(half, e.points[len(e.points)-1])
		}
		e.points = half
	}
}

// Count returns the number of observations (including NaNs).
func (e *ECDFSketch) Count() int64 { return e.count }

// Eval returns the approximate fraction of the sample ≤ x (NaN when
// empty or poisoned).
func (e *ECDFSketch) Eval(x float64) float64 {
	if e.total == 0 || e.hasNaN || math.IsNaN(x) {
		return math.NaN()
	}
	e.flush()
	var cum float64
	for _, p := range e.points {
		if p.mean > x {
			break
		}
		cum += p.weight
	}
	return cum / e.total
}

// Quantile returns the approximate p-quantile: the value at which the
// sketch's cumulative weight first reaches p·n. NaN when empty,
// poisoned, or p outside [0, 1].
func (e *ECDFSketch) Quantile(p float64) float64 {
	if e.total == 0 || e.hasNaN || math.IsNaN(p) || p < 0 || p > 1 {
		return math.NaN()
	}
	e.flush()
	target := p * e.total
	var cum float64
	for _, pt := range e.points {
		cum += pt.weight
		if cum >= target {
			return pt.mean
		}
	}
	return e.points[len(e.points)-1].mean
}
