package stats

import (
	"math"
	"testing"
)

// Regression tests for NaN poisoning of the order statistics. Pre-fix,
// sort.Float64s placed NaN elements first, so a NaN-containing sample
// returned finite but silently shifted quantiles — Quantile([NaN,1..9],
// 0) reported NaN only by accident of position while interior quantiles
// interpolated against displaced order statistics and came back wrong
// with no signal at all.

var nanSample = []float64{3, math.NaN(), 1, 4, 1, 5, 9, 2, 6}

func TestQuantilePropagatesNaN(t *testing.T) {
	for _, p := range []float64{0, 0.25, 0.5, 0.75, 1} {
		if got := Quantile(nanSample, p); !math.IsNaN(got) {
			t.Errorf("Quantile(sample with NaN, %v) = %v, want NaN", p, got)
		}
	}
	// A clean sample is unaffected.
	if got := Quantile([]float64{1, 2, 3}, 0.5); got != 2 {
		t.Errorf("Quantile(clean, 0.5) = %v, want 2", got)
	}
}

func TestMedianPropagatesNaN(t *testing.T) {
	if got := Median(nanSample); !math.IsNaN(got) {
		t.Errorf("Median(sample with NaN) = %v, want NaN", got)
	}
}

func TestQuantilesPropagateNaN(t *testing.T) {
	got := Quantiles(nanSample, []float64{0.1, 0.5, 0.9})
	for i, q := range got {
		if !math.IsNaN(q) {
			t.Errorf("Quantiles(sample with NaN)[%d] = %v, want NaN", i, q)
		}
	}
}

func TestSummarizePropagatesNaN(t *testing.T) {
	s, err := Summarize(nanSample)
	if err != nil {
		t.Fatalf("Summarize(sample with NaN) error = %v, want nil", err)
	}
	if s.N != len(nanSample) {
		t.Errorf("N = %d, want %d", s.N, len(nanSample))
	}
	for name, v := range map[string]float64{
		"Mean": s.Mean, "StdDev": s.StdDev, "Min": s.Min,
		"Q1": s.Q1, "Median": s.Median, "Q3": s.Q3, "Max": s.Max,
	} {
		if !math.IsNaN(v) {
			t.Errorf("Summary.%s = %v, want NaN", name, v)
		}
	}
	// Empty samples still error rather than returning a NaN summary.
	if _, err := Summarize(nil); err != ErrEmpty {
		t.Errorf("Summarize(nil) error = %v, want ErrEmpty", err)
	}
}

// TestQuantileSilentShiftRegression reproduces the concrete pre-fix wrong
// answer: with one NaN sorted to the front of ten samples, the 0.5
// quantile of 1..9 came back as 4.5 instead of 5 — finite, plausible, and
// wrong. It must be NaN.
func TestQuantileSilentShiftRegression(t *testing.T) {
	xs := []float64{9, 8, 7, 6, math.NaN(), 5, 4, 3, 2, 1}
	got := Quantile(xs, 0.5)
	if !math.IsNaN(got) {
		t.Errorf("Quantile = %v; pre-fix this was a silently shifted finite value, want NaN", got)
	}
}
