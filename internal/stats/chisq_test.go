package stats

import (
	"math"
	"testing"
)

func TestChiSquareMatchingCounts(t *testing.T) {
	stat, p, err := ChiSquare([]int{10, 10, 10}, []float64{10, 10, 10})
	if err != nil {
		t.Fatal(err)
	}
	if stat != 0 {
		t.Errorf("stat = %v, want 0", stat)
	}
	if p < 0.999 {
		t.Errorf("p = %v, want ~1", p)
	}
}

func TestChiSquareKnownValue(t *testing.T) {
	// Observed {12, 8} vs expected {10, 10}: stat = 4/10 + 4/10 = 0.8,
	// df=1: p = P(chi2_1 > 0.8) ~ 0.3711.
	stat, p, err := ChiSquare([]int{12, 8}, []float64{10, 10})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(stat, 0.8, 1e-12) {
		t.Errorf("stat = %v, want 0.8", stat)
	}
	if !almostEqual(p, 0.3711, 5e-4) {
		t.Errorf("p = %v, want ~0.3711", p)
	}
}

func TestChiSquareErrors(t *testing.T) {
	if _, _, err := ChiSquare([]int{1}, []float64{1, 2}); err != ErrMismatch {
		t.Errorf("mismatch error = %v", err)
	}
	if _, _, err := ChiSquare([]int{1}, []float64{1}); err != ErrEmpty {
		t.Errorf("single-cell error = %v", err)
	}
	if _, _, err := ChiSquare([]int{1, 2}, []float64{1, 0}); err == nil {
		t.Error("expected error for non-positive expected count")
	}
}

func TestChiSquareUniform(t *testing.T) {
	// Strongly non-uniform counts must give a tiny p-value.
	_, p, err := ChiSquareUniform([]int{100, 5, 5, 5})
	if err != nil {
		t.Fatal(err)
	}
	if p > 1e-10 {
		t.Errorf("p = %v, want ~0 for wildly non-uniform counts", p)
	}
	// Perfectly uniform counts give p ~ 1.
	_, p, err = ChiSquareUniform([]int{20, 20, 20, 20})
	if err != nil {
		t.Fatal(err)
	}
	if p < 0.999 {
		t.Errorf("p = %v, want ~1 for uniform counts", p)
	}
	if _, _, err := ChiSquareUniform([]int{0, 0}); err != ErrEmpty {
		t.Errorf("all-zero error = %v", err)
	}
}

func TestChiSquareSurvivalKnownValues(t *testing.T) {
	tests := []struct {
		x, df, want float64
	}{
		{3.841, 1, 0.05},   // 95th percentile of chi2_1
		{5.991, 2, 0.05},   // 95th percentile of chi2_2
		{18.307, 10, 0.05}, // 95th percentile of chi2_10
		{0, 5, 1},
	}
	for _, tt := range tests {
		if got := ChiSquareSurvival(tt.x, tt.df); !almostEqual(got, tt.want, 2e-3) {
			t.Errorf("ChiSquareSurvival(%v, %v) = %v, want %v", tt.x, tt.df, got, tt.want)
		}
	}
}

func TestRegularizedGamma(t *testing.T) {
	// P(1, x) = 1 - exp(-x).
	for _, x := range []float64{0.1, 0.5, 1, 2, 5, 10} {
		want := 1 - math.Exp(-x)
		if got := RegularizedGammaP(1, x); !almostEqual(got, want, 1e-10) {
			t.Errorf("P(1, %v) = %v, want %v", x, got, want)
		}
	}
	// P + Q = 1.
	for _, a := range []float64{0.5, 1.5, 3, 10} {
		for _, x := range []float64{0.2, 1, 4, 20} {
			p := RegularizedGammaP(a, x)
			q := RegularizedGammaQ(a, x)
			if !almostEqual(p+q, 1, 1e-10) {
				t.Errorf("P+Q at (%v, %v) = %v, want 1", a, x, p+q)
			}
		}
	}
	// Edge cases.
	if RegularizedGammaP(1, 0) != 0 || RegularizedGammaQ(1, 0) != 1 {
		t.Error("x=0 edge case wrong")
	}
	if !math.IsNaN(RegularizedGammaP(-1, 1)) || !math.IsNaN(RegularizedGammaP(1, -1)) {
		t.Error("invalid arguments should give NaN")
	}
	// Half-integer check: P(0.5, x) = erf(sqrt(x)).
	for _, x := range []float64{0.25, 1, 4} {
		want := math.Erf(math.Sqrt(x))
		if got := RegularizedGammaP(0.5, x); !almostEqual(got, want, 1e-10) {
			t.Errorf("P(0.5, %v) = %v, want %v", x, got, want)
		}
	}
}
