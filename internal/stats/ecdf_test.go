package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewECDFEmpty(t *testing.T) {
	if _, err := NewECDF(nil); err != ErrEmpty {
		t.Errorf("NewECDF(nil) error = %v, want ErrEmpty", err)
	}
}

func TestECDFEval(t *testing.T) {
	e, err := NewECDF([]float64{1, 2, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	tests := []struct {
		x    float64
		want float64
	}{
		{0.5, 0},
		{1, 0.25},
		{1.5, 0.25},
		{2, 0.75}, // ties counted inclusively
		{2.5, 0.75},
		{3, 1},
		{99, 1},
	}
	for _, tt := range tests {
		if got := e.Eval(tt.x); !almostEqual(got, tt.want, 1e-12) {
			t.Errorf("Eval(%v) = %v, want %v", tt.x, got, tt.want)
		}
	}
}

func TestECDFQuantileRoundTrip(t *testing.T) {
	xs := []float64{5, 1, 3, 2, 4}
	e, err := NewECDF(xs)
	if err != nil {
		t.Fatal(err)
	}
	if got := e.Quantile(0.5); got != 3 {
		t.Errorf("Quantile(0.5) = %v, want 3", got)
	}
	if e.Min() != 1 || e.Max() != 5 || e.N() != 5 {
		t.Errorf("Min/Max/N = %v/%v/%v", e.Min(), e.Max(), e.N())
	}
	if !math.IsNaN(e.Quantile(2)) {
		t.Error("Quantile(2) should be NaN")
	}
}

func TestECDFDoesNotAliasInput(t *testing.T) {
	xs := []float64{3, 1, 2}
	e, err := NewECDF(xs)
	if err != nil {
		t.Fatal(err)
	}
	xs[0] = 999
	if e.Max() == 999 {
		t.Error("ECDF aliases caller's slice")
	}
}

func TestECDFPoints(t *testing.T) {
	e, _ := NewECDF([]float64{0, 10})
	pts := e.Points(5)
	if len(pts) != 5 {
		t.Fatalf("Points(5) returned %d points", len(pts))
	}
	if pts[0].X != 0 || pts[4].X != 10 {
		t.Errorf("endpoints = %v, %v", pts[0], pts[4])
	}
	if pts[4].F != 1 {
		t.Errorf("final F = %v, want 1", pts[4].F)
	}
	if got := e.Points(1); len(got) != 2 {
		t.Errorf("Points(1) should clamp to 2 points, got %d", len(got))
	}
}

func TestECDFStepPoints(t *testing.T) {
	e, _ := NewECDF([]float64{1, 1, 2, 3, 3, 3})
	pts := e.StepPoints()
	if len(pts) != 3 {
		t.Fatalf("StepPoints = %v, want 3 distinct steps", pts)
	}
	wantF := []float64{2.0 / 6, 3.0 / 6, 1}
	for i, pt := range pts {
		if !almostEqual(pt.F, wantF[i], 1e-12) {
			t.Errorf("step %d F = %v, want %v", i, pt.F, wantF[i])
		}
	}
}

// Property: Eval is a valid CDF — monotone, 0 before min, 1 at max.
func TestECDFMonotoneProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(60)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = r.NormFloat64() * 10
		}
		e, err := NewECDF(xs)
		if err != nil {
			return false
		}
		if e.Eval(e.Min()-1) != 0 || e.Eval(e.Max()) != 1 {
			return false
		}
		prev := -1.0
		for x := e.Min() - 1; x <= e.Max()+1; x += (e.Max() - e.Min() + 2) / 37 {
			f := e.Eval(x)
			if f < prev || f < 0 || f > 1 {
				return false
			}
			prev = f
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// Property: Eval(Quantile(p)) >= p - 2/n for all p. Type-7 quantiles
// interpolate between order statistics, so exact inversion can undershoot
// by up to one observation's mass plus the interpolation gap.
func TestECDFQuantileInverseProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(40)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = float64(r.Intn(20))
		}
		e, err := NewECDF(xs)
		if err != nil {
			return false
		}
		slack := 2/float64(n) + 1e-9
		for p := 0.05; p < 1; p += 0.1 {
			if e.Eval(e.Quantile(p)) < p-slack {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}
