package parallel

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestWidthClamping(t *testing.T) {
	procs := runtime.GOMAXPROCS(0)
	cases := []struct {
		parallelism, n, want int
	}{
		{0, 100, min(procs, 100)},
		{-3, 100, min(procs, 100)},
		{1, 100, 1},
		{8, 4, 4},   // never wider than the item count
		{8, 0, 8},   // n==0 means "unknown count": keep the request
		{3, 100, 3}, // explicit width wins below the item count
	}
	for _, c := range cases {
		if got := Width(c.parallelism, c.n); got != c.want {
			t.Errorf("Width(%d, %d) = %d, want %d", c.parallelism, c.n, got, c.want)
		}
	}
}

func TestMapPreservesOrder(t *testing.T) {
	items := make([]int, 500)
	for i := range items {
		items[i] = i
	}
	for _, width := range []int{1, 2, 7, 64} {
		out, err := Map(context.Background(), width, items, func(_ context.Context, i, item int) (string, error) {
			if i%17 == 0 {
				runtime.Gosched() // shake up completion order
			}
			return fmt.Sprintf("%d!", item), nil
		})
		if err != nil {
			t.Fatalf("width %d: %v", width, err)
		}
		if len(out) != len(items) {
			t.Fatalf("width %d: got %d results, want %d", width, len(out), len(items))
		}
		for i, s := range out {
			if want := fmt.Sprintf("%d!", i); s != want {
				t.Fatalf("width %d: out[%d] = %q, want %q", width, i, s, want)
			}
		}
	}
}

func TestFirstErrorWinsDeterministically(t *testing.T) {
	// Items 3 and 7 fail; whatever the interleaving, the error of the
	// lowest index must surface — the one a sequential loop returns.
	errs := map[int]error{3: errors.New("boom-3"), 7: errors.New("boom-7")}
	items := make([]int, 50)
	for trial := 0; trial < 20; trial++ {
		_, err := Map(context.Background(), 8, items, func(_ context.Context, i, _ int) (int, error) {
			if e, ok := errs[i]; ok {
				return 0, e
			}
			return i, nil
		})
		if !errors.Is(err, errs[3]) {
			t.Fatalf("trial %d: got %v, want boom-3", trial, err)
		}
	}
}

func TestErrorCancelsInFlightWork(t *testing.T) {
	boom := errors.New("boom")
	var cancelled atomic.Bool
	release := make(chan struct{})
	tasks := []func(ctx context.Context) error{
		// Long-running context-aware task: must observe cancellation
		// triggered by its sibling's failure rather than run forever.
		func(ctx context.Context) error {
			close(release)
			select {
			case <-ctx.Done():
				cancelled.Store(true)
				return nil
			case <-time.After(30 * time.Second):
				return errors.New("sibling failure never cancelled the pool")
			}
		},
		func(ctx context.Context) error {
			<-release // fail only once the sibling is in flight
			return boom
		},
	}
	if err := Do(context.Background(), 2, tasks...); !errors.Is(err, boom) {
		t.Fatalf("got %v, want boom", err)
	}
	if !cancelled.Load() {
		t.Fatal("in-flight task did not observe cancellation")
	}
}

func TestErrorStopsDispatch(t *testing.T) {
	// After an early item fails, not-yet-started items must be skipped.
	var started atomic.Int64
	items := make([]int, 1000)
	err := ForEach(context.Background(), 4, items, func(_ context.Context, i, _ int) error {
		started.Add(1)
		if i == 0 {
			return errors.New("early failure")
		}
		time.Sleep(time.Millisecond)
		return nil
	})
	if err == nil {
		t.Fatal("expected the early failure to propagate")
	}
	if n := started.Load(); n == int64(len(items)) {
		t.Fatalf("all %d items ran despite the early failure", n)
	}
}

func TestCallerCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	items := make([]int, 100)
	var ran atomic.Int64
	err := ForEach(ctx, 4, items, func(context.Context, int, int) error {
		ran.Add(1)
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
	if n := ran.Load(); n != 0 {
		t.Fatalf("%d items ran under a pre-cancelled context", n)
	}
}

func TestEmptyInput(t *testing.T) {
	out, err := Map(context.Background(), 4, nil, func(_ context.Context, _ int, _ struct{}) (int, error) {
		t.Fatal("fn called for empty input")
		return 0, nil
	})
	if err != nil || len(out) != 0 {
		t.Fatalf("got (%v, %v), want empty success", out, err)
	}
	if err := Do(context.Background(), 4); err != nil {
		t.Fatalf("empty Do: %v", err)
	}
}

// TestStressSharedCounter runs hundreds of tasks that hammer shared
// state through proper synchronization; under -race this certifies the
// pool introduces no unsynchronized access of its own.
func TestStressSharedCounter(t *testing.T) {
	const tasks = 800
	var (
		mu    sync.Mutex
		seen  = make(map[int]bool, tasks)
		total atomic.Int64
	)
	items := make([]int, tasks)
	for i := range items {
		items[i] = i
	}
	out, err := Map(context.Background(), 0, items, func(_ context.Context, i, item int) (int, error) {
		total.Add(1)
		mu.Lock()
		seen[i] = true
		mu.Unlock()
		return item * 2, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if total.Load() != tasks || len(seen) != tasks {
		t.Fatalf("ran %d/%d tasks over %d indices", total.Load(), tasks, len(seen))
	}
	for i, v := range out {
		if v != i*2 {
			t.Fatalf("out[%d] = %d, want %d", i, v, i*2)
		}
	}
}
