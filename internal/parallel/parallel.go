// Package parallel is the repository's concurrency substrate: a bounded
// worker pool with deterministic semantics, used to fan the analysis
// engine, the synthetic generator, and the simulator out across cores.
//
// The design contract, relied on throughout the repository:
//
//   - Deterministic output ordering: Map writes result i from item i, so
//     the output slice is identical to the sequential loop's regardless
//     of worker interleaving.
//   - Deterministic first-error propagation: items are dispatched in
//     index order and every started item runs to completion, so when one
//     or more items fail, the error returned is the one the plain
//     sequential loop would have hit first (the lowest failing index).
//   - Cancellation: the first failure cancels the pool context, so
//     not-yet-started items are skipped and context-aware workloads can
//     abandon in-flight work early.
//   - Width clamping: parallelism <= 0 means "use every core"
//     (GOMAXPROCS); a width of 1 reproduces the sequential path exactly,
//     running items in order on the calling goroutine's schedule.
//
// Because analyses stay byte-identical under any width, callers expose a
// single Parallelism knob and default it to the machine width.
package parallel

import (
	"context"
	"runtime"
	"sync"

	"repro/internal/obs"
)

// DefaultParallelism is the pool width used when the caller passes a
// non-positive width: the runtime's current GOMAXPROCS.
func DefaultParallelism() int { return runtime.GOMAXPROCS(0) }

// Width clamps a requested parallelism to a usable pool width: values
// below 1 become DefaultParallelism, and the width never exceeds n (the
// number of items) when n is positive.
func Width(parallelism, n int) int {
	w := parallelism
	if w < 1 {
		w = DefaultParallelism()
	}
	if n > 0 && w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return w
}

// Range is a half-open index interval [Lo, Hi) over some item slice.
type Range struct{ Lo, Hi int }

// Shards partitions n items into at most parts contiguous near-equal
// ranges, for data-parallel reductions where per-item work is too small
// to dispatch individually. The concatenation of the ranges always
// covers [0, n) in order.
func Shards(n, parts int) []Range {
	if n <= 0 {
		return nil
	}
	if parts < 1 {
		parts = 1
	}
	if parts > n {
		parts = n
	}
	out := make([]Range, 0, parts)
	for i := 0; i < parts; i++ {
		lo := i * n / parts
		hi := (i + 1) * n / parts
		if lo < hi {
			out = append(out, Range{Lo: lo, Hi: hi})
		}
	}
	return out
}

// Map applies fn to every item with at most parallelism workers and
// returns the results in item order. fn receives the (possibly
// cancelled) pool context, the item index, and the item. On failure Map
// returns the lowest-index error after every started item finished; the
// remaining items are skipped.
func Map[T, R any](ctx context.Context, parallelism int, items []T, fn func(ctx context.Context, i int, item T) (R, error)) ([]R, error) {
	out := make([]R, len(items))
	err := run(ctx, parallelism, len(items), func(ctx context.Context, i int) error {
		r, err := fn(ctx, i, items[i])
		if err != nil {
			return err
		}
		out[i] = r
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// ForEach applies fn to every item with at most parallelism workers,
// with Map's dispatch-order and first-error semantics.
func ForEach[T any](ctx context.Context, parallelism int, items []T, fn func(ctx context.Context, i int, item T) error) error {
	return run(ctx, parallelism, len(items), func(ctx context.Context, i int) error {
		return fn(ctx, i, items[i])
	})
}

// Do runs a set of heterogeneous tasks with at most parallelism workers
// and Map's first-error semantics. It is the fan-out primitive behind
// core.Run: each task fills its own result slot, and the lowest-index
// error matches the order a sequential battery would report.
func Do(ctx context.Context, parallelism int, tasks ...func(ctx context.Context) error) error {
	return run(ctx, parallelism, len(tasks), func(ctx context.Context, i int) error {
		return tasks[i](ctx)
	})
}

// run is the shared pool core: width-1 pools run inline (the sequential
// path, no goroutines), wider pools dispatch indices in order to a fixed
// set of workers. Each batch records a "parallel/batch" span plus item
// and width telemetry when collection is on (near-zero cost otherwise).
func run(ctx context.Context, parallelism, n int, fn func(ctx context.Context, i int) error) error {
	if n == 0 {
		return ctx.Err()
	}
	if ctx == nil {
		ctx = context.Background()
	}
	width := Width(parallelism, n)
	defer obs.StartSpan("parallel/batch").End()
	obs.Add("parallel/items", int64(n))
	obs.SetGauge("parallel/last_width", float64(width))
	if width == 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			if err := fn(ctx, i); err != nil {
				return err
			}
		}
		return nil
	}

	poolCtx, cancel := context.WithCancel(ctx)
	defer cancel()

	var (
		mu       sync.Mutex
		next     int // index dispatch cursor; strictly increasing
		firstIdx = -1
		firstErr error
	)
	record := func(i int, err error) {
		mu.Lock()
		if firstIdx == -1 || i < firstIdx {
			firstIdx, firstErr = i, err
		}
		mu.Unlock()
		cancel()
	}
	claim := func() (int, bool) {
		mu.Lock()
		defer mu.Unlock()
		if next >= n {
			return 0, false
		}
		// Stop dispatching once an item failed or the caller cancelled;
		// in-flight items still run to completion.
		if poolCtx.Err() != nil {
			return 0, false
		}
		i := next
		next++
		return i, true
	}

	var wg sync.WaitGroup
	wg.Add(width)
	for w := 0; w < width; w++ {
		go func() {
			defer wg.Done()
			for {
				i, ok := claim()
				if !ok {
					return
				}
				if err := fn(poolCtx, i); err != nil {
					record(i, err)
					return
				}
			}
		}()
	}
	wg.Wait()

	if firstIdx != -1 {
		return firstErr
	}
	return ctx.Err()
}
