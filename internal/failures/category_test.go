package failures

import "testing"

func TestCategoriesMatchTableII(t *testing.T) {
	t2 := Categories(Tsubame2)
	if len(t2) != 17 {
		t.Errorf("Tsubame-2 taxonomy has %d categories, Table II lists 17", len(t2))
	}
	t3 := Categories(Tsubame3)
	if len(t3) != 16 {
		t.Errorf("Tsubame-3 taxonomy has %d categories, Table II lists 16", len(t3))
	}
	if Categories(System(0)) != nil {
		t.Error("unknown system should have nil taxonomy")
	}
}

func TestCategoriesReturnsCopy(t *testing.T) {
	a := Categories(Tsubame2)
	a[0] = "Tampered"
	b := Categories(Tsubame2)
	if b[0] == "Tampered" {
		t.Error("Categories aliases internal state")
	}
}

func TestCategoryValidFor(t *testing.T) {
	tests := []struct {
		cat    Category
		system System
		want   bool
	}{
		{CatGPU, Tsubame2, true},
		{CatGPU, Tsubame3, true},
		{CatFan, Tsubame2, true},
		{CatFan, Tsubame3, false},
		{CatOmniPath, Tsubame3, true},
		{CatOmniPath, Tsubame2, false},
		{CatSXM2Board, Tsubame3, true},
		{"Nonsense", Tsubame2, false},
	}
	for _, tt := range tests {
		if got := tt.cat.ValidFor(tt.system); got != tt.want {
			t.Errorf("%q.ValidFor(%v) = %v, want %v", tt.cat, tt.system, got, tt.want)
		}
	}
}

func TestSoftwareHardwareSplit(t *testing.T) {
	software := []Category{CatOtherSW, CatPBS, CatVM, CatBoot, CatGPUDriver, CatLustre, CatSoftware, CatUnknown}
	for _, c := range software {
		if !c.Software() || c.Hardware() {
			t.Errorf("%q should be software", c)
		}
	}
	hardware := []Category{CatGPU, CatCPU, CatMemory, CatSSD, CatFan, CatPowerBoard, CatSXM2Cable}
	for _, c := range hardware {
		if !c.Hardware() || c.Software() {
			t.Errorf("%q should be hardware", c)
		}
	}
}

func TestGPURelated(t *testing.T) {
	for _, c := range []Category{CatGPU, CatGPUDriver, CatSXM2Cable, CatSXM2Board} {
		if !c.GPURelated() {
			t.Errorf("%q should be GPU-related", c)
		}
	}
	for _, c := range []Category{CatCPU, CatMemory, CatSoftware, CatFan} {
		if c.GPURelated() {
			t.Errorf("%q should not be GPU-related", c)
		}
	}
}

func TestParseCategory(t *testing.T) {
	c, err := ParseCategory(Tsubame2, "GPU")
	if err != nil || c != CatGPU {
		t.Errorf("ParseCategory = %v, %v", c, err)
	}
	if _, err := ParseCategory(Tsubame2, "OmniPath"); err == nil {
		t.Error("cross-taxonomy parse should fail")
	}
	if _, err := ParseCategory(Tsubame3, "Garbage"); err == nil {
		t.Error("unknown category should fail")
	}
}

func TestSoftwareCauses(t *testing.T) {
	causes := SoftwareCauses()
	if len(causes) != 16 {
		t.Errorf("%d software causes, Figure 3 shows a top-16", len(causes))
	}
	if causes[0] != CauseGPUDriver {
		t.Errorf("first cause = %q, Figure 3's dominant locus is the GPU driver", causes[0])
	}
	for _, c := range causes {
		if !c.Valid() {
			t.Errorf("listed cause %q reports invalid", c)
		}
	}
	if SoftwareCause("Bogus").Valid() {
		t.Error("unknown cause should be invalid")
	}
	// Returned slice is a copy.
	causes[0] = "Tampered"
	if SoftwareCauses()[0] == "Tampered" {
		t.Error("SoftwareCauses aliases internal state")
	}
}
