package failures

import (
	"math"
	"testing"
	"time"
)

// makeLog builds a small validated log: GPU failures at hours 0, 10, 30
// on two nodes plus a software failure at hour 40.
func makeLog(t *testing.T) *Log {
	t.Helper()
	records := []Failure{
		{ID: 1, System: Tsubame2, Time: ts(0), Recovery: 10 * time.Hour, Category: CatGPU, Node: "n0001", GPUs: []int{1}},
		{ID: 2, System: Tsubame2, Time: ts(10), Recovery: 20 * time.Hour, Category: CatGPU, Node: "n0001", GPUs: []int{0, 1}},
		{ID: 3, System: Tsubame2, Time: ts(30), Recovery: 30 * time.Hour, Category: CatGPU, Node: "n0002", GPUs: []int{2}},
		{ID: 4, System: Tsubame2, Time: ts(40), Recovery: 4 * time.Hour, Category: CatOtherSW, Node: "n0003"},
	}
	log, err := NewLog(Tsubame2, records)
	if err != nil {
		t.Fatal(err)
	}
	return log
}

func TestNewLogValidation(t *testing.T) {
	if _, err := NewLog(System(0), nil); err == nil {
		t.Error("invalid system should fail")
	}
	bad := []Failure{{ID: 1, System: Tsubame3, Time: ts(0), Category: CatGPU}}
	if _, err := NewLog(Tsubame2, bad); err == nil {
		t.Error("cross-system record should fail")
	}
	invalid := []Failure{{ID: 1, System: Tsubame2, Time: ts(0), Category: CatOmniPath}}
	if _, err := NewLog(Tsubame2, invalid); err == nil {
		t.Error("invalid record should fail")
	}
}

func TestNewLogNormalizesTimesToUTC(t *testing.T) {
	tokyo := time.FixedZone("JST", 9*3600)
	records := []Failure{
		{ID: 1, System: Tsubame2, Time: time.Date(2012, 4, 1, 8, 30, 0, 0, tokyo), Category: CatGPU, GPUs: []int{0}},
		{ID: 2, System: Tsubame2, Time: ts(100), Category: CatGPU, GPUs: []int{1}},
	}
	log, err := NewLog(Tsubame2, records)
	if err != nil {
		t.Fatal(err)
	}
	got := log.At(0).Time
	if got.Location() != time.UTC {
		t.Errorf("occurrence time kept location %v, want UTC", got.Location())
	}
	// The instant is preserved: 08:30+09:00 is 23:30 UTC the previous day,
	// so the month-keyed facets see March, not April.
	if !got.Equal(records[0].Time) {
		t.Errorf("normalization changed the instant: %v vs %v", got, records[0].Time)
	}
	if got.Month() != time.March {
		t.Errorf("UTC month = %v, want March", got.Month())
	}
}

func TestNewLogSortsAndCopies(t *testing.T) {
	records := []Failure{
		{ID: 2, System: Tsubame2, Time: ts(10), Category: CatGPU, GPUs: []int{0}},
		{ID: 1, System: Tsubame2, Time: ts(0), Category: CatGPU, GPUs: []int{1}},
	}
	log, err := NewLog(Tsubame2, records)
	if err != nil {
		t.Fatal(err)
	}
	if log.At(0).ID != 1 || log.At(1).ID != 2 {
		t.Error("log not sorted by time")
	}
	// Mutating the input or the Records() copy must not touch the log.
	records[0].ID = 99
	got := log.Records()
	got[0].ID = 77
	if log.At(0).ID != 1 && log.At(1).ID != 2 {
		t.Error("log aliases caller slices")
	}
}

func TestLogWindowAndSpan(t *testing.T) {
	log := makeLog(t)
	start, end, ok := log.Window()
	if !ok || !start.Equal(ts(0)) || !end.Equal(ts(40)) {
		t.Errorf("Window = %v..%v ok=%v", start, end, ok)
	}
	if log.Span() != 40*time.Hour {
		t.Errorf("Span = %v", log.Span())
	}
	empty, _ := NewLog(Tsubame2, nil)
	if _, _, ok := empty.Window(); ok {
		t.Error("empty window should report !ok")
	}
	if empty.Span() != 0 {
		t.Error("empty span should be 0")
	}
}

func TestLogFilterAndGroups(t *testing.T) {
	log := makeLog(t)
	gpu := log.Filter(func(f Failure) bool { return f.Category == CatGPU })
	if gpu.Len() != 3 {
		t.Errorf("GPU sub-log has %d records, want 3", gpu.Len())
	}
	if got := log.ByCategory(); got[CatGPU] != 3 || got[CatOtherSW] != 1 {
		t.Errorf("ByCategory = %v", got)
	}
	if got := log.ByNode(); got["n0001"] != 2 || got["n0002"] != 1 {
		t.Errorf("ByNode = %v", got)
	}
	if log.GPUFailures().Len() != 3 {
		t.Error("GPUFailures should keep GPU-related records")
	}
	if log.SoftwareFailures().Len() != 1 || log.HardwareFailures().Len() != 3 {
		t.Error("software/hardware split wrong")
	}
}

func TestLogByNodeSkipsUnattributed(t *testing.T) {
	records := []Failure{
		{ID: 1, System: Tsubame2, Time: ts(0), Category: CatNetwork}, // no node
		{ID: 2, System: Tsubame2, Time: ts(1), Category: CatGPU, Node: "n0001", GPUs: []int{0}},
	}
	log, err := NewLog(Tsubame2, records)
	if err != nil {
		t.Fatal(err)
	}
	if got := log.ByNode(); len(got) != 1 {
		t.Errorf("ByNode = %v, want only n0001", got)
	}
}

func TestInterarrivalAndMTBF(t *testing.T) {
	log := makeLog(t)
	gaps := log.InterarrivalHours()
	want := []float64{10, 20, 10}
	if len(gaps) != 3 {
		t.Fatalf("gaps = %v", gaps)
	}
	for i := range want {
		if math.Abs(gaps[i]-want[i]) > 1e-9 {
			t.Errorf("gap %d = %v, want %v", i, gaps[i], want[i])
		}
	}
	mtbf, ok := log.MTBFHours()
	if !ok || math.Abs(mtbf-40.0/3) > 1e-9 {
		t.Errorf("MTBF = %v ok=%v, want 13.33", mtbf, ok)
	}
	single, _ := NewLog(Tsubame2, []Failure{{ID: 1, System: Tsubame2, Time: ts(0), Category: CatGPU, GPUs: []int{0}}})
	if _, ok := single.MTBFHours(); ok {
		t.Error("MTBF of single-record log should report !ok")
	}
	if single.InterarrivalHours() != nil {
		t.Error("single-record interarrival should be nil")
	}
}

func TestRecoveryAndMTTR(t *testing.T) {
	log := makeLog(t)
	hours := log.RecoveryHours()
	if len(hours) != 4 {
		t.Fatalf("recovery hours = %v", hours)
	}
	mttr, ok := log.MTTRHours()
	if !ok || math.Abs(mttr-16) > 1e-9 { // (10+20+30+4)/4
		t.Errorf("MTTR = %v ok=%v, want 16", mttr, ok)
	}
	empty, _ := NewLog(Tsubame2, nil)
	if _, ok := empty.MTTRHours(); ok {
		t.Error("MTTR of empty log should report !ok")
	}
}

func TestLogMerge(t *testing.T) {
	log := makeLog(t)
	extra, err := NewLog(Tsubame2, []Failure{
		{ID: 9, System: Tsubame2, Time: ts(5), Category: CatFan, Node: "n0009", Recovery: time.Hour},
	})
	if err != nil {
		t.Fatal(err)
	}
	merged, err := log.Merge(extra)
	if err != nil {
		t.Fatal(err)
	}
	if merged.Len() != 5 {
		t.Errorf("merged length = %d, want 5", merged.Len())
	}
	if merged.At(1).ID != 9 {
		t.Error("merged log not re-sorted by time")
	}
	other, _ := NewLog(Tsubame3, nil)
	if _, err := log.Merge(other); err == nil {
		t.Error("cross-system merge should fail")
	}
	same, err := log.Merge(nil)
	if err != nil || same.Len() != log.Len() {
		t.Errorf("nil merge = %v records, err %v", same.Len(), err)
	}
}

func TestSplitAt(t *testing.T) {
	log := makeLog(t)
	before, after := log.SplitAt(ts(30))
	if before.Len() != 2 || after.Len() != 2 {
		t.Errorf("split sizes = %d/%d, want 2/2", before.Len(), after.Len())
	}
	// The boundary record (t=30) lands in the "after" half.
	if after.At(0).ID != 3 {
		t.Errorf("first after-record = %d, want 3", after.At(0).ID)
	}
	if before.System() != log.System() || after.System() != log.System() {
		t.Error("split halves lost the system")
	}
}

func TestSplitFraction(t *testing.T) {
	log := makeLog(t)
	head, tail := log.SplitFraction(0.5)
	if head.Len() != 2 || tail.Len() != 2 {
		t.Errorf("split sizes = %d/%d, want 2/2", head.Len(), tail.Len())
	}
	all, none := log.SplitFraction(1.5)
	if all.Len() != log.Len() || none.Len() != 0 {
		t.Errorf("clamped split = %d/%d", all.Len(), none.Len())
	}
	none2, all2 := log.SplitFraction(-1)
	if none2.Len() != 0 || all2.Len() != log.Len() {
		t.Errorf("negative split = %d/%d", none2.Len(), all2.Len())
	}
	// Mutating a half must not affect the original.
	recs := head.Records()
	if len(recs) > 0 {
		recs[0].ID = 999
		if log.At(0).ID == 999 {
			t.Error("split aliases parent log")
		}
	}
}

func TestAnonymize(t *testing.T) {
	log := makeLog(t)
	anon, err := Anonymize(log, AnonymizeOptions{Key: "secret"})
	if err != nil {
		t.Fatal(err)
	}
	if anon.Len() != log.Len() {
		t.Fatalf("anonymized length = %d, want %d", anon.Len(), log.Len())
	}
	// Node identities changed but the recurrence structure survives.
	origCounts := map[int]int{}
	for _, c := range log.ByNode() {
		origCounts[c]++
	}
	anonCounts := map[int]int{}
	for node, c := range anon.ByNode() {
		if node[0] != 'x' {
			t.Errorf("unanonymized node id %q", node)
		}
		anonCounts[c]++
	}
	for k, v := range origCounts {
		if anonCounts[k] != v {
			t.Errorf("recurrence histogram changed: %v vs %v", anonCounts, origCounts)
		}
	}
	// Everything else is untouched.
	for i, r := range anon.Records() {
		orig := log.At(i)
		if r.Category != orig.Category || r.Recovery != orig.Recovery || !r.Time.Equal(orig.Time) {
			t.Errorf("record %d mutated beyond the node field", i)
		}
	}
}

func TestAnonymizeDeterministicAndKeyed(t *testing.T) {
	log := makeLog(t)
	a1, err := Anonymize(log, AnonymizeOptions{Key: "k1"})
	if err != nil {
		t.Fatal(err)
	}
	a2, err := Anonymize(log, AnonymizeOptions{Key: "k1"})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Anonymize(log, AnonymizeOptions{Key: "k2"})
	if err != nil {
		t.Fatal(err)
	}
	same, diff := 0, 0
	for i := range a1.Records() {
		if a1.At(i).Node == a2.At(i).Node {
			same++
		}
		if a1.At(i).Node != b.At(i).Node {
			diff++
		}
	}
	if same != a1.Len() {
		t.Error("same key should give an identical mapping")
	}
	if diff == 0 {
		t.Error("different keys should give different mappings")
	}
}

func TestAnonymizeScrubOptions(t *testing.T) {
	records := []Failure{
		{ID: 1, System: Tsubame3, Time: ts(5).Add(7 * time.Minute), Category: CatSoftware,
			Node: "n0001", SoftwareCause: CauseGPUDriver},
	}
	log, err := NewLog(Tsubame3, records)
	if err != nil {
		t.Fatal(err)
	}
	anon, err := Anonymize(log, AnonymizeOptions{Key: "k", DropSoftwareCauses: true, CoarsenTimes: true})
	if err != nil {
		t.Fatal(err)
	}
	r := anon.At(0)
	if r.SoftwareCause != "" {
		t.Error("software cause not dropped")
	}
	if r.Time.Hour() != 0 || r.Time.Minute() != 0 {
		t.Errorf("time not coarsened: %v", r.Time)
	}
}

func TestAnonymizeRequiresKey(t *testing.T) {
	log := makeLog(t)
	if _, err := Anonymize(log, AnonymizeOptions{}); err == nil {
		t.Error("empty key should fail")
	}
}
