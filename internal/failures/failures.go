// Package failures defines the domain model of the reproduction: the
// failure record schema shared by the synthetic generator, the log
// serializers, and the analysis engine, plus the failure-category
// taxonomies of the Tsubame-2 and Tsubame-3 supercomputers (Table II of the
// paper) and the software root-locus taxonomy (Figure 3).
package failures

import (
	"fmt"
	"sort"
	"time"
)

// System identifies which supercomputer generation a record belongs to.
type System int

// The two studied systems. Values start at 1 so the zero value is invalid
// and cannot be mistaken for a real system.
const (
	Tsubame2 System = iota + 1
	Tsubame3
)

// String implements fmt.Stringer.
func (s System) String() string {
	switch s {
	case Tsubame2:
		return "Tsubame-2"
	case Tsubame3:
		return "Tsubame-3"
	default:
		return fmt.Sprintf("System(%d)", int(s))
	}
}

// Valid reports whether s is a known system.
func (s System) Valid() bool { return s == Tsubame2 || s == Tsubame3 }

// ParseSystem converts the serialized system name back to a System.
func ParseSystem(name string) (System, error) {
	switch name {
	case "Tsubame-2", "tsubame-2", "tsubame2", "t2":
		return Tsubame2, nil
	case "Tsubame-3", "tsubame-3", "tsubame3", "t3":
		return Tsubame3, nil
	default:
		return 0, fmt.Errorf("failures: unknown system %q", name)
	}
}

// Failure is one record of a failure log. The paper's logs record, for each
// failure, the time of occurrence, the time to recovery, and the category;
// our schema additionally carries the location fields the paper's spatial
// analyses require (node, GPU slots) and the software root locus used by
// Figure 3.
type Failure struct {
	// ID is a log-unique sequence number.
	ID int
	// System is the machine generation the failure occurred on.
	System System
	// Time is the moment of failure occurrence.
	Time time.Time
	// Recovery is the time taken to completely repair the failure and
	// return to normal operational status.
	Recovery time.Duration
	// Category is the reported failure category (Table II).
	Category Category
	// Node is the identifier of the affected compute node. Empty for
	// system-level failures that are not attributable to a node (rack,
	// network fabric, PBS, ...).
	Node string
	// GPUs lists the GPU slot indices involved, for failures that touch
	// GPUs. The paper's Table III counts the size of this set.
	GPUs []int
	// SoftwareCause is the root locus of a software failure (Figure 3);
	// empty for non-software failures.
	SoftwareCause SoftwareCause
}

// Hardware reports whether the failure's category is a hardware category.
func (f Failure) Hardware() bool { return f.Category.Hardware() }

// Software reports whether the failure's category is a software category.
func (f Failure) Software() bool { return f.Category.Software() }

// MultiGPU reports whether the failure involved two or more GPUs on the
// same node simultaneously.
func (f Failure) MultiGPU() bool { return len(f.GPUs) >= 2 }

// RepairEnd returns the moment the repair completed.
func (f Failure) RepairEnd() time.Time { return f.Time.Add(f.Recovery) }

// Validate checks the record's internal consistency against the taxonomy
// of its system.
func (f Failure) Validate() error {
	if !f.System.Valid() {
		return fmt.Errorf("failures: record %d has invalid system %d", f.ID, int(f.System))
	}
	if f.Time.IsZero() {
		return fmt.Errorf("failures: record %d has zero occurrence time", f.ID)
	}
	if f.Recovery < 0 {
		return fmt.Errorf("failures: record %d has negative recovery %v", f.ID, f.Recovery)
	}
	if !f.Category.ValidFor(f.System) {
		return fmt.Errorf("failures: record %d category %q is not in the %v taxonomy", f.ID, f.Category, f.System)
	}
	// Slot lists are at most GPUsPerNode long once the range check holds,
	// so a quadratic scan beats allocating a set per record — Validate runs
	// once per record per ingested batch, and the map dominated its cost.
	maxSlot := GPUsPerNode(f.System)
	for i, g := range f.GPUs {
		if g < 0 || g >= maxSlot {
			return fmt.Errorf("failures: record %d references GPU slot %d outside [0, %d)", f.ID, g, maxSlot)
		}
		for _, prev := range f.GPUs[:i] {
			if prev == g {
				return fmt.Errorf("failures: record %d lists GPU slot %d twice", f.ID, g)
			}
		}
	}
	if f.SoftwareCause != "" && !f.Software() {
		return fmt.Errorf("failures: record %d has software cause %q but non-software category %q", f.ID, f.SoftwareCause, f.Category)
	}
	if f.SoftwareCause != "" && !f.SoftwareCause.Valid() {
		return fmt.Errorf("failures: record %d has unknown software cause %q", f.ID, f.SoftwareCause)
	}
	return nil
}

// GPUsPerNode returns the node GPU count of the system (Figure 1: three on
// Tsubame-2, four on Tsubame-3).
func GPUsPerNode(s System) int {
	switch s {
	case Tsubame2:
		return 3
	case Tsubame3:
		return 4
	default:
		return 0
	}
}

// SortByTime orders records chronologically in place, breaking ties by ID
// so the order is deterministic.
func SortByTime(records []Failure) {
	sort.Slice(records, func(i, j int) bool {
		return chronoLess(records[i], records[j])
	})
}

// chronoLess is the canonical log ordering: occurrence time, ties broken
// by ID. SortByTime and Log.AppendSorted share it so a merged log is
// ordered exactly as a from-scratch sort.
func chronoLess(a, b Failure) bool {
	if !a.Time.Equal(b.Time) {
		return a.Time.Before(b.Time)
	}
	return a.ID < b.ID
}
