package failures

import "fmt"

// Category is a reported failure category. The taxonomy differs between
// the two systems (Table II of the paper); ValidFor checks membership.
type Category string

// Tsubame-2 failure categories (Table II, left column).
const (
	CatBoot        Category = "Boot"
	CatCPU         Category = "CPU"
	CatDisk        Category = "Disk"
	CatDown        Category = "Down"
	CatFan         Category = "FAN"
	CatGPU         Category = "GPU"
	CatIB          Category = "IB"
	CatMemory      Category = "Memory"
	CatNetwork     Category = "Network"
	CatOtherHW     Category = "OtherHW"
	CatOtherSW     Category = "OtherSW"
	CatPBS         Category = "PBS"
	CatPSU         Category = "PSU"
	CatRack        Category = "Rack"
	CatSSD         Category = "SSD"
	CatSystemBoard Category = "SystemBoard"
	CatVM          Category = "VM"
)

// Tsubame-3 failure categories (Table II, right column). CPU, Disk, GPU,
// and Memory are shared with Tsubame-2.
const (
	CatCRC           Category = "CRC"
	CatGPUDriver     Category = "GPUDriver"
	CatIPMotherboard Category = "IPMotherboard"
	CatLedFrontPanel Category = "LedFrontPanel"
	CatLustre        Category = "Lustre"
	CatOmniPath      Category = "OmniPath"
	CatPowerBoard    Category = "PowerBoard"
	CatRibbonCable   Category = "RibbonCable"
	CatSoftware      Category = "Software"
	CatSXM2Cable     Category = "SXM2Cable"
	CatSXM2Board     Category = "SXM2Board"
	CatUnknown       Category = "Unknown"
)

// tsubame2Categories is the Table II taxonomy for Tsubame-2, in the
// paper's order.
var tsubame2Categories = []Category{
	CatBoot, CatCPU, CatDisk, CatDown, CatFan, CatGPU, CatIB, CatMemory,
	CatNetwork, CatOtherHW, CatOtherSW, CatPBS, CatPSU, CatRack, CatSSD,
	CatSystemBoard, CatVM,
}

// tsubame3Categories is the Table II taxonomy for Tsubame-3, in the
// paper's order.
var tsubame3Categories = []Category{
	CatCPU, CatCRC, CatDisk, CatGPU, CatGPUDriver, CatIPMotherboard,
	CatLedFrontPanel, CatLustre, CatMemory, CatOmniPath, CatPowerBoard,
	CatRibbonCable, CatSoftware, CatSXM2Cable, CatSXM2Board, CatUnknown,
}

// softwareCategories flags the categories the paper treats as software
// failures; everything else in the taxonomies is hardware or
// infrastructure.
var softwareCategories = map[Category]bool{
	CatOtherSW:   true,
	CatPBS:       true,
	CatVM:        true,
	CatBoot:      true,
	CatGPUDriver: true,
	CatLustre:    true,
	CatSoftware:  true,
	CatUnknown:   true,
}

// gpuCategories flags the categories that involve GPU cards and therefore
// carry GPU slot information (Figure 5, Table III).
var gpuCategories = map[Category]bool{
	CatGPU:       true,
	CatGPUDriver: true,
	CatSXM2Cable: true,
	CatSXM2Board: true,
}

// Categories returns the Table II taxonomy of the system, in the paper's
// order. The returned slice is a copy.
func Categories(s System) []Category {
	switch s {
	case Tsubame2:
		return append([]Category(nil), tsubame2Categories...)
	case Tsubame3:
		return append([]Category(nil), tsubame3Categories...)
	default:
		return nil
	}
}

// ValidFor reports whether the category belongs to the system's taxonomy.
func (c Category) ValidFor(s System) bool {
	for _, cat := range taxonomy(s) {
		if cat == c {
			return true
		}
	}
	return false
}

func taxonomy(s System) []Category {
	switch s {
	case Tsubame2:
		return tsubame2Categories
	case Tsubame3:
		return tsubame3Categories
	default:
		return nil
	}
}

// Software reports whether the category is a software category.
func (c Category) Software() bool { return softwareCategories[c] }

// Hardware reports whether the category is a hardware category.
func (c Category) Hardware() bool { return !softwareCategories[c] }

// GPURelated reports whether failures of this category involve GPU cards.
func (c Category) GPURelated() bool { return gpuCategories[c] }

// ParseCategory validates name against the system taxonomy.
func ParseCategory(s System, name string) (Category, error) {
	c := Category(name)
	if !c.ValidFor(s) {
		return "", fmt.Errorf("failures: category %q is not in the %v taxonomy", name, s)
	}
	return c, nil
}

// SoftwareCause is the root locus of a software failure, the unit of
// Figure 3's breakdown. The paper reports 171 software failures on
// Tsubame-3 with GPU-driver-related problems at ~43% and ~20% unknown.
type SoftwareCause string

// Software root loci (Figure 3's top-16 plus the catch-all). The dominant
// loci (GPU driver, unknown, OmniPath driver, GPU Direct, Lustre client,
// kernel panic) are named in the paper's text; the remainder are plausible
// loci chosen to fill the published top-16 histogram shape.
const (
	CauseGPUDriver       SoftwareCause = "GPUDriverProblem"
	CauseUnknown         SoftwareCause = "UnknownCause"
	CauseOmniPathDriver  SoftwareCause = "OmniPathDriver"
	CauseGPUDirect       SoftwareCause = "GPUDirect"
	CauseCUDAMismatch    SoftwareCause = "CUDAVersionMismatch"
	CauseLustreClient    SoftwareCause = "LustreClient"
	CauseKernelPanic     SoftwareCause = "KernelPanic"
	CauseMPIRuntime      SoftwareCause = "MPIRuntime"
	CauseScheduler       SoftwareCause = "SchedulerDaemon"
	CauseFilesystemMount SoftwareCause = "FilesystemMount"
	CauseNFS             SoftwareCause = "NFS"
	CauseOSUpdate        SoftwareCause = "OSUpdate"
	CauseFirmware        SoftwareCause = "FirmwareMismatch"
	CauseContainer       SoftwareCause = "ContainerRuntime"
	CauseSecurityPatch   SoftwareCause = "SecurityPatch"
	CauseAuthentication  SoftwareCause = "Authentication"
)

// softwareCauses lists every known root locus, most frequent first (the
// Figure 3 ordering).
var softwareCauses = []SoftwareCause{
	CauseGPUDriver, CauseUnknown, CauseOmniPathDriver, CauseGPUDirect,
	CauseCUDAMismatch, CauseLustreClient, CauseKernelPanic, CauseMPIRuntime,
	CauseScheduler, CauseFilesystemMount, CauseNFS, CauseOSUpdate,
	CauseFirmware, CauseContainer, CauseSecurityPatch, CauseAuthentication,
}

// SoftwareCauses returns the known root loci in Figure 3 order. The
// returned slice is a copy.
func SoftwareCauses() []SoftwareCause {
	return append([]SoftwareCause(nil), softwareCauses...)
}

// Valid reports whether the cause is a known root locus.
func (c SoftwareCause) Valid() bool {
	for _, cause := range softwareCauses {
		if cause == c {
			return true
		}
	}
	return false
}
