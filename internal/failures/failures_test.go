package failures

import (
	"strings"
	"testing"
	"time"
)

func ts(h int) time.Time {
	return time.Date(2020, time.January, 1, 0, 0, 0, 0, time.UTC).Add(time.Duration(h) * time.Hour)
}

func validFailure(id int) Failure {
	return Failure{
		ID:       id,
		System:   Tsubame2,
		Time:     ts(id),
		Recovery: 2 * time.Hour,
		Category: CatGPU,
		Node:     "n0001",
		GPUs:     []int{0},
	}
}

func TestSystemString(t *testing.T) {
	if Tsubame2.String() != "Tsubame-2" || Tsubame3.String() != "Tsubame-3" {
		t.Errorf("names = %q, %q", Tsubame2, Tsubame3)
	}
	if got := System(9).String(); !strings.Contains(got, "9") {
		t.Errorf("unknown system string = %q", got)
	}
}

func TestSystemValid(t *testing.T) {
	if !Tsubame2.Valid() || !Tsubame3.Valid() {
		t.Error("known systems should be valid")
	}
	if System(0).Valid() || System(3).Valid() {
		t.Error("unknown systems should be invalid")
	}
}

func TestParseSystem(t *testing.T) {
	for _, name := range []string{"Tsubame-2", "tsubame-2", "tsubame2", "t2"} {
		s, err := ParseSystem(name)
		if err != nil || s != Tsubame2 {
			t.Errorf("ParseSystem(%q) = %v, %v", name, s, err)
		}
	}
	s, err := ParseSystem("t3")
	if err != nil || s != Tsubame3 {
		t.Errorf("ParseSystem(t3) = %v, %v", s, err)
	}
	if _, err := ParseSystem("tsubame4"); err == nil {
		t.Error("unknown name should fail")
	}
}

func TestGPUsPerNode(t *testing.T) {
	if GPUsPerNode(Tsubame2) != 3 {
		t.Error("Tsubame-2 has 3 GPUs per node")
	}
	if GPUsPerNode(Tsubame3) != 4 {
		t.Error("Tsubame-3 has 4 GPUs per node")
	}
	if GPUsPerNode(System(0)) != 0 {
		t.Error("unknown system should report 0")
	}
}

func TestFailureValidate(t *testing.T) {
	tests := []struct {
		name    string
		mutate  func(*Failure)
		wantErr bool
	}{
		{"valid", func(f *Failure) {}, false},
		{"invalid system", func(f *Failure) { f.System = 0 }, true},
		{"zero time", func(f *Failure) { f.Time = time.Time{} }, true},
		{"negative recovery", func(f *Failure) { f.Recovery = -time.Hour }, true},
		{"category from other taxonomy", func(f *Failure) { f.Category = CatOmniPath }, true},
		{"GPU slot out of range", func(f *Failure) { f.GPUs = []int{3} }, true},
		{"negative GPU slot", func(f *Failure) { f.GPUs = []int{-1} }, true},
		{"duplicate GPU slot", func(f *Failure) { f.GPUs = []int{1, 1} }, true},
		{"three distinct slots OK", func(f *Failure) { f.GPUs = []int{0, 1, 2} }, false},
		{"software cause on hardware category", func(f *Failure) { f.SoftwareCause = CauseGPUDriver }, true},
		{"unknown software cause", func(f *Failure) {
			f.Category = CatOtherSW
			f.GPUs = nil
			f.SoftwareCause = "Bogus"
		}, true},
		{"valid software cause", func(f *Failure) {
			f.Category = CatOtherSW
			f.GPUs = nil
			f.SoftwareCause = CauseKernelPanic
		}, false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			f := validFailure(1)
			tt.mutate(&f)
			err := f.Validate()
			if (err != nil) != tt.wantErr {
				t.Errorf("Validate() = %v, wantErr %v", err, tt.wantErr)
			}
		})
	}
}

func TestFailureDerived(t *testing.T) {
	f := validFailure(1)
	if !f.Hardware() || f.Software() {
		t.Error("GPU failures are hardware")
	}
	if f.MultiGPU() {
		t.Error("single-GPU failure should not be MultiGPU")
	}
	f.GPUs = []int{0, 2}
	if !f.MultiGPU() {
		t.Error("two-GPU failure should be MultiGPU")
	}
	if got := f.RepairEnd(); !got.Equal(f.Time.Add(2 * time.Hour)) {
		t.Errorf("RepairEnd = %v", got)
	}
}

func TestSortByTime(t *testing.T) {
	records := []Failure{
		{ID: 3, Time: ts(5)},
		{ID: 1, Time: ts(1)},
		{ID: 2, Time: ts(5)}, // tie with ID 3: lower ID first
	}
	SortByTime(records)
	wantIDs := []int{1, 2, 3}
	for i, w := range wantIDs {
		if records[i].ID != w {
			t.Fatalf("order = %v, want %v", []int{records[0].ID, records[1].ID, records[2].ID}, wantIDs)
		}
	}
}
