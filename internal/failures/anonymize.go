package failures

import (
	"crypto/hmac"
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"sort"
)

// AnonymizeOptions controls what an anonymization pass hides. The paper's
// scope section notes the study was constrained by "business sensitivity";
// this transform is what a center would run before sharing a log like the
// one this repository reproduces.
type AnonymizeOptions struct {
	// Key seeds the deterministic node-identifier permutation: the same
	// key always produces the same mapping, so incremental log shares
	// stay consistent, while different keys are unlinkable.
	Key string
	// DropSoftwareCauses removes the root-locus annotations (often the
	// most sensitive free-text field in real logs).
	DropSoftwareCauses bool
	// CoarsenTimes truncates occurrence times to whole days, hiding
	// shift-level operational detail while preserving the monthly and
	// seasonal analyses.
	CoarsenTimes bool
}

// Anonymize returns a copy of the log with node identities remapped by a
// keyed pseudorandom permutation and optional field scrubbing. The
// mapping is one-to-one, so per-node recurrence analyses (Figure 4)
// survive; rack topology is deliberately destroyed (pseudonyms carry no
// position), and node identities cannot be recovered without the key.
func Anonymize(log *Log, opts AnonymizeOptions) (*Log, error) {
	if opts.Key == "" {
		return nil, fmt.Errorf("failures: anonymization requires a non-empty key")
	}
	// Collect the distinct node IDs, deterministically ordered.
	nodeSet := make(map[string]bool)
	for _, r := range log.records {
		if r.Node != "" {
			nodeSet[r.Node] = true
		}
	}
	nodes := make([]string, 0, len(nodeSet))
	for n := range nodeSet {
		nodes = append(nodes, n)
	}
	sort.Strings(nodes)

	// Keyed order: sort nodes by their HMAC digests, then assign fresh
	// sequential pseudonyms. One-to-one by construction (ties broken by
	// original name inside the sort's stability guarantee).
	mac := func(s string) uint64 {
		h := hmac.New(sha256.New, []byte(opts.Key))
		h.Write([]byte(s))
		return binary.BigEndian.Uint64(h.Sum(nil))
	}
	sort.SliceStable(nodes, func(i, j int) bool {
		hi, hj := mac(nodes[i]), mac(nodes[j])
		if hi != hj {
			return hi < hj
		}
		return nodes[i] < nodes[j]
	})
	mapping := make(map[string]string, len(nodes))
	for i, n := range nodes {
		mapping[n] = fmt.Sprintf("x%04d", i)
	}

	out := make([]Failure, len(log.records))
	for i, r := range log.records {
		rr := r
		if rr.Node != "" {
			rr.Node = mapping[rr.Node]
		}
		if opts.DropSoftwareCauses {
			rr.SoftwareCause = ""
		}
		if opts.CoarsenTimes {
			rr.Time = rr.Time.Truncate(24 * 3600e9)
		}
		rr.GPUs = append([]int(nil), r.GPUs...)
		out[i] = rr
	}
	anon := &Log{system: log.system, records: out}
	SortByTime(anon.records)
	return anon, nil
}
