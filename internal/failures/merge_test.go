package failures

import (
	"math/rand"
	"reflect"
	"testing"
	"time"
)

// mergeRecords synthesizes n valid Tsubame-2 records at hour offsets
// drawn from a seeded source, with unique IDs so (time, ID) is a total
// order and merge results are comparable bit-for-bit to a full re-sort.
func mergeRecords(n int, seed int64) []Failure {
	rng := rand.New(rand.NewSource(seed))
	out := make([]Failure, n)
	for i := range out {
		out[i] = Failure{
			ID:       i + 1,
			System:   Tsubame2,
			Time:     ts(rng.Intn(5000)),
			Recovery: time.Duration(rng.Intn(100)) * time.Hour,
			Category: CatGPU,
			Node:     "n0001",
			GPUs:     []int{i % 3},
		}
	}
	return out
}

// TestAppendSortedMatchesNewLog is the merge path's core claim: for any
// split of a record set into a committed log and a batch, AppendSorted
// over a SortBatch run yields a log record-identical to NewLog over the
// concatenation.
func TestAppendSortedMatchesNewLog(t *testing.T) {
	records := mergeRecords(200, 7)
	for _, split := range []int{0, 1, 50, 199, 200} {
		committed, err := NewLog(Tsubame2, records[:split])
		if err != nil {
			t.Fatal(err)
		}
		batch, err := SortBatch(Tsubame2, records[split:])
		if err != nil {
			t.Fatal(err)
		}
		merged, _, err := committed.AppendSorted(batch)
		if err != nil {
			t.Fatalf("split %d: %v", split, err)
		}
		want, err := NewLog(Tsubame2, records)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(merged.Records(), want.Records()) {
			t.Errorf("split %d: merged log differs from NewLog over the concatenation", split)
		}
	}
}

// TestAppendSortedTailFastPath pins the fast-path detection: a batch
// sorting entirely at or after the committed run reports atTail, an
// interleaving batch does not, and both orders are correct.
func TestAppendSortedTailFastPath(t *testing.T) {
	log := makeLog(t) // records at hours 0, 10, 30, 40
	tail := []Failure{
		{ID: 10, System: Tsubame2, Time: ts(40), Recovery: time.Hour, Category: CatGPU, GPUs: []int{0}},
		{ID: 11, System: Tsubame2, Time: ts(50), Recovery: time.Hour, Category: CatGPU, GPUs: []int{1}},
	}
	sorted, err := SortBatch(Tsubame2, tail)
	if err != nil {
		t.Fatal(err)
	}
	merged, atTail, err := log.AppendSorted(sorted)
	if err != nil {
		t.Fatal(err)
	}
	if !atTail {
		t.Error("batch at the time-tail (tie broken by larger ID) not detected as tail append")
	}
	if got := merged.Len(); got != 6 {
		t.Fatalf("merged log has %d records, want 6", got)
	}

	mid := []Failure{{ID: 12, System: Tsubame2, Time: ts(20), Recovery: time.Hour, Category: CatGPU, GPUs: []int{2}}}
	sorted, err = SortBatch(Tsubame2, mid)
	if err != nil {
		t.Fatal(err)
	}
	merged2, atTail, err := merged.AppendSorted(sorted)
	if err != nil {
		t.Fatal(err)
	}
	if atTail {
		t.Error("mid-log batch reported as tail append")
	}
	for i := 1; i < merged2.Len(); i++ {
		if merged2.At(i).Time.Before(merged2.At(i - 1).Time) {
			t.Fatalf("merged log out of order at %d", i)
		}
	}
	if merged2.At(2).ID != 12 {
		t.Errorf("hour-20 record landed at index %d's position, want index 2", merged2.At(2).ID)
	}
}

// TestAppendSortedTieKeepsCommittedFirst pins the tie rule: on equal
// (time, ID) keys the committed run's record precedes the batch's.
func TestAppendSortedTieKeepsCommittedFirst(t *testing.T) {
	a := Failure{ID: 1, System: Tsubame2, Time: ts(5), Category: CatGPU, GPUs: []int{0}, Node: "committed"}
	b := a
	b.Node = "batch"
	log, err := NewLog(Tsubame2, []Failure{a})
	if err != nil {
		t.Fatal(err)
	}
	sorted, err := SortBatch(Tsubame2, []Failure{b})
	if err != nil {
		t.Fatal(err)
	}
	merged, atTail, err := log.AppendSorted(sorted)
	if err != nil {
		t.Fatal(err)
	}
	if !atTail {
		t.Error("equal-key batch should take the tail fast path")
	}
	if merged.At(0).Node != "committed" || merged.At(1).Node != "batch" {
		t.Errorf("tie order %q, %q; want committed before batch", merged.At(0).Node, merged.At(1).Node)
	}
}

// TestAppendSortedRejectsBadRuns pins the misuse guards: wrong-system
// records and unsorted runs are rejected without touching the log.
func TestAppendSortedRejectsBadRuns(t *testing.T) {
	log := makeLog(t)
	wrong := []Failure{{ID: 9, System: Tsubame3, Time: ts(99), Category: CatGPU}}
	if _, _, err := log.AppendSorted(wrong); err == nil {
		t.Error("wrong-system run accepted")
	}
	unsorted := []Failure{
		{ID: 9, System: Tsubame2, Time: ts(99), Category: CatGPU, GPUs: []int{0}},
		{ID: 8, System: Tsubame2, Time: ts(98), Category: CatGPU, GPUs: []int{1}},
	}
	if _, _, err := log.AppendSorted(unsorted); err == nil {
		t.Error("unsorted run accepted")
	}
	if log.Len() != 4 {
		t.Errorf("rejected runs changed the log: %d records", log.Len())
	}
}

// TestSortBatchDoesNotMutateInput pins that SortBatch sorts a copy.
func TestSortBatchDoesNotMutateInput(t *testing.T) {
	in := []Failure{
		{ID: 2, System: Tsubame2, Time: ts(10), Category: CatGPU, GPUs: []int{0}},
		{ID: 1, System: Tsubame2, Time: ts(0), Category: CatGPU, GPUs: []int{1}},
	}
	if _, err := SortBatch(Tsubame2, in); err != nil {
		t.Fatal(err)
	}
	if in[0].ID != 2 || in[1].ID != 1 {
		t.Error("SortBatch reordered the caller's slice")
	}
}

// TestDropFirstAndCompact pins the retention helpers: DropFirst shares
// the backing array, Compact copies it, and both preserve records.
func TestDropFirstAndCompact(t *testing.T) {
	log := makeLog(t)
	tail := log.DropFirst(2)
	if tail.Len() != 2 || tail.At(0).ID != 3 {
		t.Fatalf("DropFirst(2) = %d records starting at ID %d, want 2 starting at 3", tail.Len(), tail.At(0).ID)
	}
	compacted := tail.Compact()
	if !reflect.DeepEqual(compacted.Records(), tail.Records()) {
		t.Error("Compact changed the records")
	}
	if log.DropFirst(-1).Len() != 4 || log.DropFirst(99).Len() != 0 {
		t.Error("DropFirst does not clamp k")
	}
	// Batch-rebuilding the suffix is identical — the retention
	// equivalence the index.Store tests rely on.
	want, err := NewLog(Tsubame2, tail.Records())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want.Records(), tail.Records()) {
		t.Error("DropFirst suffix differs from batch-built log over the same records")
	}
}
