package failures

import (
	"fmt"
	"time"
)

// Log is a chronologically ordered failure log for one system. The zero
// value is an empty log; construct populated logs with NewLog so ordering
// and validation invariants hold.
type Log struct {
	system  System
	records []Failure
}

// NewLog builds a validated, time-sorted log from records. All records
// must belong to system. The input slice is copied.
//
// Occurrence times are normalized to UTC: RFC 3339 parsing preserves
// whatever zone offset the input carried, and any facet keyed on a
// calendar field (the monthly seasonality buckets, digest date labels)
// would otherwise depend on the offset the log happened to be exported
// with rather than on the instant of failure. The trace writers already
// emit UTC, so for round-tripped logs this is the identity.
func NewLog(system System, records []Failure) (*Log, error) {
	sorted, err := SortBatch(system, records)
	if err != nil {
		return nil, err
	}
	return &Log{system: system, records: sorted}, nil
}

// NewLogSorted builds a log from records already in ascending (time, ID)
// order with UTC occurrence times — the contract a .tsbc block stream
// certifies, since its writer rejects out-of-order appends and its times
// are decoded as UTC instants. Each record is still validated, and the
// ordering is verified, in one linear pass; unlike NewLog the slice is
// taken over without a copy or a sort, so bulk decoders skip the
// dominant O(n log n) + O(n)-copy cost. The caller must not retain the
// slice.
func NewLogSorted(system System, records []Failure) (*Log, error) {
	if !system.Valid() {
		return nil, fmt.Errorf("failures: invalid system %d", int(system))
	}
	for i := range records {
		if records[i].System != system {
			return nil, fmt.Errorf("failures: record %d belongs to %v, log is for %v", records[i].ID, records[i].System, system)
		}
		if err := records[i].Validate(); err != nil {
			return nil, err
		}
		if i > 0 && chronoLess(records[i], records[i-1]) {
			return nil, fmt.Errorf("failures: sorted run is unsorted at index %d (record %d)", i, records[i].ID)
		}
	}
	return &Log{system: system, records: records}, nil
}

// SortBatch validates records for system, normalizes occurrence times to
// UTC, and returns them as a standalone ascending (time, ID)-sorted run —
// the unit of incremental ingest. The input slice is not mutated. Cost is
// O(b log b) in the batch alone, independent of any log the run is later
// merged into; on error nothing is allocated beyond the batch copy.
//
// A SortBatch run feeds Log.AppendSorted, which merges it into a
// committed log without revalidating or re-sorting the log.
func SortBatch(system System, records []Failure) ([]Failure, error) {
	if !system.Valid() {
		return nil, fmt.Errorf("failures: invalid system %d", int(system))
	}
	sorted := append([]Failure(nil), records...)
	for i := range sorted {
		if sorted[i].System != system {
			return nil, fmt.Errorf("failures: record %d belongs to %v, log is for %v", sorted[i].ID, sorted[i].System, system)
		}
		if err := sorted[i].Validate(); err != nil {
			return nil, err
		}
		sorted[i].Time = sorted[i].Time.UTC()
	}
	SortByTime(sorted)
	return sorted, nil
}

// AppendSorted merges a SortBatch-produced run into the log, returning a
// new log holding both record sets in canonical (time, ID) order.
// atTail reports whether the run sorted entirely at or after the log's
// last record — the live-stream common case, served by a pure append in
// O(b) amortized instead of an O(n+b) two-run merge. Records equal under
// the ordering keep committed-run records before batch records.
//
// The run must come from SortBatch for the same system: AppendSorted
// checks system membership and sortedness (O(b)) but does not re-run
// per-record validation. The receiver is not mutated, but like append,
// the returned log may share (and, on the tail fast path, extend) the
// receiver's backing array — after a successful AppendSorted, treat the
// receiver as superseded and append only to the returned log. Earlier
// logs in an append lineage keep seeing exactly their own records.
func (l *Log) AppendSorted(sorted []Failure) (merged *Log, atTail bool, err error) {
	for i := range sorted {
		if sorted[i].System != l.system {
			return nil, false, fmt.Errorf("failures: record %d belongs to %v, log is for %v", sorted[i].ID, sorted[i].System, l.system)
		}
		if i > 0 && chronoLess(sorted[i], sorted[i-1]) {
			return nil, false, fmt.Errorf("failures: AppendSorted run is unsorted at index %d (record %d)", i, sorted[i].ID)
		}
	}
	if len(sorted) == 0 {
		return l, true, nil
	}
	n := len(l.records)
	if n == 0 || !chronoLess(sorted[0], l.records[n-1]) {
		return &Log{system: l.system, records: append(l.records, sorted...)}, true, nil
	}
	out := make([]Failure, 0, n+len(sorted))
	i, j := 0, 0
	for i < n && j < len(sorted) {
		if chronoLess(sorted[j], l.records[i]) {
			out = append(out, sorted[j])
			j++
		} else {
			out = append(out, l.records[i])
			i++
		}
	}
	out = append(out, l.records[i:]...)
	out = append(out, sorted[j:]...)
	return &Log{system: l.system, records: out}, false, nil
}

// DropFirst returns the log without its first k records. The returned
// log shares the receiver's backing array (O(1)); the dropped head stays
// referenced until the result is Compacted. k outside [0, Len] is
// clamped.
func (l *Log) DropFirst(k int) *Log {
	if k < 0 {
		k = 0
	}
	if k > len(l.records) {
		k = len(l.records)
	}
	return &Log{system: l.system, records: l.records[k:]}
}

// Compact returns a copy of the log in a fresh, exactly-sized backing
// array, releasing memory shared with predecessors in an append/DropFirst
// lineage (the retention machinery in index.Store compacts periodically
// so eviction actually frees the evicted head).
func (l *Log) Compact() *Log {
	records := make([]Failure, len(l.records))
	copy(records, l.records)
	return &Log{system: l.system, records: records}
}

// System returns the machine generation the log belongs to.
func (l *Log) System() System { return l.system }

// Len returns the number of records.
func (l *Log) Len() int { return len(l.records) }

// Records returns the chronologically ordered records. The returned slice
// is a copy; mutating it does not affect the log.
func (l *Log) Records() []Failure {
	return append([]Failure(nil), l.records...)
}

// At returns record i in chronological order.
func (l *Log) At(i int) Failure { return l.records[i] }

// Window returns the occurrence times of the first and last records.
// ok is false for an empty log.
func (l *Log) Window() (start, end time.Time, ok bool) {
	if len(l.records) == 0 {
		return time.Time{}, time.Time{}, false
	}
	return l.records[0].Time, l.records[len(l.records)-1].Time, true
}

// Span returns the duration between the first and last failure.
func (l *Log) Span() time.Duration {
	start, end, ok := l.Window()
	if !ok {
		return 0
	}
	return end.Sub(start)
}

// Filter returns a new log containing the records for which keep returns
// true. Ordering is preserved.
func (l *Log) Filter(keep func(Failure) bool) *Log {
	var out []Failure
	for _, r := range l.records {
		if keep(r) {
			out = append(out, r)
		}
	}
	return &Log{system: l.system, records: out}
}

// ByCategory groups record counts per category.
func (l *Log) ByCategory() map[Category]int {
	out := make(map[Category]int)
	for _, r := range l.records {
		out[r.Category]++
	}
	return out
}

// ByNode groups record counts per node, skipping records without node
// attribution.
func (l *Log) ByNode() map[string]int {
	out := make(map[string]int)
	for _, r := range l.records {
		if r.Node != "" {
			out[r.Node]++
		}
	}
	return out
}

// GPUFailures returns the sub-log of records whose category involves GPU
// cards.
func (l *Log) GPUFailures() *Log {
	return l.Filter(func(f Failure) bool { return f.Category.GPURelated() })
}

// SoftwareFailures returns the sub-log of software-category records.
func (l *Log) SoftwareFailures() *Log {
	return l.Filter(func(f Failure) bool { return f.Software() })
}

// HardwareFailures returns the sub-log of hardware-category records.
func (l *Log) HardwareFailures() *Log {
	return l.Filter(func(f Failure) bool { return f.Hardware() })
}

// InterarrivalHours returns the time between consecutive failures in
// hours: len(records)-1 values for a log with at least two records.
func (l *Log) InterarrivalHours() []float64 {
	if len(l.records) < 2 {
		return nil
	}
	out := make([]float64, 0, len(l.records)-1)
	for i := 1; i < len(l.records); i++ {
		out = append(out, l.records[i].Time.Sub(l.records[i-1].Time).Hours())
	}
	return out
}

// RecoveryHours returns every record's time to recovery in hours.
func (l *Log) RecoveryHours() []float64 {
	out := make([]float64, len(l.records))
	for i, r := range l.records {
		out[i] = r.Recovery.Hours()
	}
	return out
}

// MTBFHours returns the mean time between failures in hours (the mean
// inter-arrival gap). ok is false when the log has fewer than two records.
func (l *Log) MTBFHours() (float64, bool) {
	gaps := l.InterarrivalHours()
	if len(gaps) == 0 {
		return 0, false
	}
	var sum float64
	for _, g := range gaps {
		sum += g
	}
	return sum / float64(len(gaps)), true
}

// MTTRHours returns the mean time to recovery in hours. ok is false for an
// empty log.
func (l *Log) MTTRHours() (float64, bool) {
	if len(l.records) == 0 {
		return 0, false
	}
	var sum float64
	for _, r := range l.records {
		sum += r.Recovery.Hours()
	}
	return sum / float64(len(l.records)), true
}

// Merge combines l with other (same system) into a new sorted log.
func (l *Log) Merge(other *Log) (*Log, error) {
	if other == nil {
		return NewLog(l.system, l.records)
	}
	if other.system != l.system {
		return nil, fmt.Errorf("failures: cannot merge %v log into %v log", other.system, l.system)
	}
	combined := make([]Failure, 0, len(l.records)+len(other.records))
	combined = append(combined, l.records...)
	combined = append(combined, other.records...)
	return NewLog(l.system, combined)
}

// SplitAt partitions the log into records strictly before t and records
// at or after t — the train/test split used to back-test predictors
// without leakage.
func (l *Log) SplitAt(t time.Time) (before, after *Log) {
	var a, b []Failure
	for _, r := range l.records {
		if r.Time.Before(t) {
			a = append(a, r)
		} else {
			b = append(b, r)
		}
	}
	return &Log{system: l.system, records: a}, &Log{system: l.system, records: b}
}

// SplitFraction splits the log chronologically so the first part holds
// frac of the records (rounded down). frac outside (0, 1) returns the
// whole log on one side.
func (l *Log) SplitFraction(frac float64) (head, tail *Log) {
	n := int(frac * float64(len(l.records)))
	if n < 0 {
		n = 0
	}
	if n > len(l.records) {
		n = len(l.records)
	}
	head = &Log{system: l.system, records: append([]Failure(nil), l.records[:n]...)}
	tail = &Log{system: l.system, records: append([]Failure(nil), l.records[n:]...)}
	return head, tail
}
