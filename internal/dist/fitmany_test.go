package dist

import (
	"math/rand"
	"reflect"
	"testing"
)

func batchSamples(t *testing.T) [][]float64 {
	t.Helper()
	rng := rand.New(rand.NewSource(7))
	w, err := NewWeibull(0.9, 20)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := NewLogNormal(2.5, 1.1)
	if err != nil {
		t.Fatal(err)
	}
	samples := make([][]float64, 8)
	for i := range samples {
		xs := make([]float64, 150+10*i)
		for j := range xs {
			if i%2 == 0 {
				xs[j] = w.Sample(rng)
			} else {
				xs[j] = ln.Sample(rng)
			}
		}
		samples[i] = xs
	}
	return samples
}

func TestFitAllManyMatchesSequential(t *testing.T) {
	samples := batchSamples(t)
	for _, width := range []int{1, 0, 4} {
		got := FitAllMany(samples, width)
		if len(got) != len(samples) {
			t.Fatalf("width %d: got %d results, want %d", width, len(got), len(samples))
		}
		for i, xs := range samples {
			want, wantErr := FitAll(xs)
			if (wantErr == nil) != (got[i].Err == nil) {
				t.Fatalf("width %d sample %d: err %v vs sequential %v", width, i, got[i].Err, wantErr)
			}
			if !reflect.DeepEqual(want, got[i].Fits) {
				t.Errorf("width %d sample %d: fits diverged from sequential", width, i)
			}
		}
	}
}

func TestFitAllManyRecordsPerSampleFailures(t *testing.T) {
	samples := [][]float64{{1, 2, 3, 4, 5}, nil, {2, 3, 4, 5, 6}}
	got := FitAllMany(samples, 2)
	if got[0].Err != nil || got[2].Err != nil {
		t.Fatalf("good samples failed: %v / %v", got[0].Err, got[2].Err)
	}
	if got[1].Err == nil {
		t.Fatal("empty sample should have recorded a fit error")
	}
}

func TestFitBestManyMatchesSequential(t *testing.T) {
	samples := batchSamples(t)
	got, err := FitBestMany(samples, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i, xs := range samples {
		want, err := FitBest(xs)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(want, got[i]) {
			t.Errorf("sample %d: best fit diverged from sequential", i)
		}
	}
}

func TestFitBestManyPropagatesFirstError(t *testing.T) {
	samples := [][]float64{{1, 2, 3, 4, 5}, nil, {2, 3, 4, 5, 6}}
	if _, err := FitBestMany(samples, 3); err == nil {
		t.Fatal("expected the empty sample to abort the batch")
	}
}
