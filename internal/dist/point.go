package dist

import (
	"fmt"
	"math"
	"math/rand"
)

// Point is the degenerate distribution concentrated at Value. It exists
// for failure-injection testing: driving the simulator with exact,
// hand-checkable schedules.
type Point struct {
	Value float64
}

// NewPoint returns a point mass at v (v must be non-negative: durations).
func NewPoint(v float64) (Point, error) {
	if v < 0 || math.IsNaN(v) {
		return Point{}, fmt.Errorf("dist: point mass must be non-negative, got %v", v)
	}
	return Point{Value: v}, nil
}

// Sample always returns the value.
func (p Point) Sample(*rand.Rand) float64 { return p.Value }

// Mean returns the value.
func (p Point) Mean() float64 { return p.Value }

// Var returns 0.
func (p Point) Var() float64 { return 0 }

// CDF is the unit step at the value.
func (p Point) CDF(x float64) float64 {
	if x < p.Value {
		return 0
	}
	return 1
}

// Quantile returns the value for every p in [0, 1].
func (p Point) Quantile(q float64) float64 {
	if q < 0 || q > 1 || math.IsNaN(q) {
		return math.NaN()
	}
	return p.Value
}

// String implements fmt.Stringer.
func (p Point) String() string { return fmt.Sprintf("Point(%.4g)", p.Value) }
