// Package dist provides the probability-distribution substrate for the
// reproduction: seeded random-variate generation, the parametric families
// used to model time-between-failures and time-to-recovery (exponential,
// Weibull, log-normal, gamma), empirical and mixture distributions, and
// maximum-likelihood fitting with Kolmogorov-Smirnov model selection.
//
// Everything is deterministic given a seed: library code never consults
// wall-clock time or global randomness.
package dist

import (
	"math"
	"math/rand"
)

// Distribution is a univariate continuous probability distribution over the
// non-negative reals (durations in hours throughout this repository).
type Distribution interface {
	// Sample draws one variate using rng.
	Sample(rng *rand.Rand) float64
	// Mean returns the distribution mean (NaN if undefined).
	Mean() float64
	// Var returns the distribution variance (NaN if undefined).
	Var() float64
	// CDF returns P(X <= x).
	CDF(x float64) float64
	// Quantile returns the p-quantile; NaN for p outside [0, 1].
	Quantile(p float64) float64
	// String describes the distribution and its parameters.
	String() string
}

// NewRNG returns a deterministic random source for the given seed.
// Substreams for independent processes should be created with Fork so that
// adding one sampling site does not perturb every other stream.
func NewRNG(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(splitMix64(seed)))
}

// Fork derives an independent deterministic stream from a parent seed and a
// stream label. Identical (seed, label) pairs always produce identical
// streams.
func Fork(seed int64, label string) *rand.Rand {
	h := uint64(seed)
	for _, b := range []byte(label) {
		h ^= uint64(b)
		h *= 1099511628211 // FNV-1a prime
	}
	return rand.New(rand.NewSource(splitMix64(int64(h))))
}

// splitMix64 scrambles a seed so that adjacent integer seeds yield
// uncorrelated streams.
func splitMix64(seed int64) int64 {
	z := uint64(seed) + 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	return int64(z & math.MaxInt64)
}

// quantileBisect inverts a CDF numerically on [lo, hi] by bisection. It is
// used by families without a closed-form quantile (gamma, mixtures).
func quantileBisect(cdf func(float64) float64, p, lo, hi float64) float64 {
	if p <= 0 {
		return lo
	}
	if p >= 1 {
		return hi
	}
	// Expand hi until the CDF brackets p (defensive; callers pass a
	// generous upper bound already).
	for cdf(hi) < p && hi < math.MaxFloat64/4 {
		hi *= 2
	}
	for i := 0; i < 200; i++ {
		mid := (lo + hi) / 2
		if cdf(mid) < p {
			lo = mid
		} else {
			hi = mid
		}
		if hi-lo <= 1e-12*(1+hi) {
			break
		}
	}
	return (lo + hi) / 2
}
