package dist

import (
	"context"

	"repro/internal/parallel"
)

// SampleFits pairs one sample's family ranking with its fit error, so a
// batch fit can report per-sample failures without aborting the batch.
type SampleFits struct {
	// Fits is the FitAll ranking (best KS first); nil when Err is set.
	Fits []Fit
	// Err is the fit failure of this sample, when no family fits.
	Err error
}

// FitAllMany runs FitAll over every sample with at most parallelism
// workers, preserving sample order. Per-sample failures land in the
// corresponding SampleFits rather than aborting the batch — the batch
// analogue of tsubame-fit's per-category loop.
func FitAllMany(samples [][]float64, parallelism int) []SampleFits {
	out, _ := parallel.Map(context.Background(), parallelism, samples, func(_ context.Context, _ int, xs []float64) (SampleFits, error) {
		fits, err := FitAll(xs)
		return SampleFits{Fits: fits, Err: err}, nil
	})
	return out
}

// FitAllManySorted is FitAllMany over already-sorted samples: each sample
// goes through FitAllSorted, so the batch performs zero sorts — the
// fan-out form the analysis index's per-category sorted arenas feed.
func FitAllManySorted(samples [][]float64, parallelism int) []SampleFits {
	out, _ := parallel.Map(context.Background(), parallelism, samples, func(_ context.Context, _ int, sorted []float64) (SampleFits, error) {
		fits, err := FitAllSorted(sorted)
		return SampleFits{Fits: fits, Err: err}, nil
	})
	return out
}

// FitBestMany fits the best family to every sample with at most
// parallelism workers, preserving sample order. The first failing sample
// (lowest index) aborts the batch, matching a sequential FitBest loop.
func FitBestMany(samples [][]float64, parallelism int) ([]Fit, error) {
	return parallel.Map(context.Background(), parallelism, samples, func(_ context.Context, _ int, xs []float64) (Fit, error) {
		return FitBest(xs)
	})
}
