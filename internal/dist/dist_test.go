package dist

import (
	"math"
	"testing"
)

func almostEqual(a, b, tol float64) bool {
	if math.IsNaN(a) || math.IsNaN(b) {
		return math.IsNaN(a) && math.IsNaN(b)
	}
	return math.Abs(a-b) <= tol
}

func TestNewRNGDeterministic(t *testing.T) {
	a := NewRNG(42)
	b := NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Float64() != b.Float64() {
			t.Fatal("same seed produced different streams")
		}
	}
}

func TestNewRNGAdjacentSeedsDiffer(t *testing.T) {
	a := NewRNG(1)
	b := NewRNG(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Float64() == b.Float64() {
			same++
		}
	}
	if same > 0 {
		t.Errorf("adjacent seeds shared %d of 100 draws", same)
	}
}

func TestForkIndependentStreams(t *testing.T) {
	a1 := Fork(42, "times")
	a2 := Fork(42, "times")
	b := Fork(42, "categories")
	var matchedSelf, matchedOther int
	for i := 0; i < 100; i++ {
		x := a1.Float64()
		if x == a2.Float64() {
			matchedSelf++
		}
		if x == b.Float64() {
			matchedOther++
		}
	}
	if matchedSelf != 100 {
		t.Errorf("identical fork labels matched only %d/100 draws", matchedSelf)
	}
	if matchedOther > 0 {
		t.Errorf("different fork labels matched %d/100 draws", matchedOther)
	}
}

// sampleMoments draws n variates and returns their mean and variance.
func sampleMoments(d Distribution, n int, seed int64) (mean, variance float64) {
	rng := NewRNG(seed)
	xs := make([]float64, n)
	var sum float64
	for i := range xs {
		xs[i] = d.Sample(rng)
		sum += xs[i]
	}
	mean = sum / float64(n)
	var ss float64
	for _, x := range xs {
		dd := x - mean
		ss += dd * dd
	}
	return mean, ss / float64(n-1)
}

// checkDistribution verifies the universal Distribution contract: sampling
// moments match the analytic ones, the CDF is monotone with Quantile as
// its inverse, and samples are non-negative.
func checkDistribution(t *testing.T, d Distribution) {
	t.Helper()
	const n = 60000
	mean, variance := sampleMoments(d, n, 12345)
	wantMean, wantVar := d.Mean(), d.Var()
	meanTol := 4 * math.Sqrt(wantVar/n) * 2 // generous 8-sigma-ish band
	if !almostEqual(mean, wantMean, math.Max(meanTol, 0.02*wantMean)) {
		t.Errorf("%v: sample mean %v, want %v", d, mean, wantMean)
	}
	if wantVar > 0 && math.Abs(variance-wantVar) > 0.15*wantVar {
		t.Errorf("%v: sample variance %v, want %v", d, variance, wantVar)
	}
	// CDF monotonicity and quantile inversion.
	prev := -1.0
	for p := 0.01; p < 1; p += 0.07 {
		q := d.Quantile(p)
		if q < prev {
			t.Errorf("%v: quantile not monotone at p=%v", d, p)
		}
		prev = q
		if got := d.CDF(q); math.Abs(got-p) > 1e-6 {
			t.Errorf("%v: CDF(Quantile(%v)) = %v", d, p, got)
		}
	}
	if d.CDF(-1) != 0 {
		t.Errorf("%v: CDF(-1) = %v, want 0", d, d.CDF(-1))
	}
	rng := NewRNG(999)
	for i := 0; i < 1000; i++ {
		if x := d.Sample(rng); x < 0 {
			t.Fatalf("%v: negative sample %v", d, x)
		}
	}
	if !math.IsNaN(d.Quantile(-0.1)) || !math.IsNaN(d.Quantile(1.1)) {
		t.Errorf("%v: quantile outside [0,1] should be NaN", d)
	}
}
