package dist

import (
	"fmt"
	"math"
	"math/rand"
)

// LogNormal is the log-normal distribution: ln X ~ Normal(Mu, Sigma^2).
// Repair times are classically log-normal; we use it for the
// time-to-recovery model, whose paper distribution has mean ~55 h with a
// tail reaching hundreds of hours (SSD repairs up to ~290 h on Tsubame-2).
type LogNormal struct {
	Mu    float64
	Sigma float64
}

// NewLogNormal returns a log-normal with the given log-scale parameters.
// Sigma must be positive.
func NewLogNormal(mu, sigma float64) (LogNormal, error) {
	if !(sigma > 0) {
		return LogNormal{}, fmt.Errorf("dist: lognormal sigma must be positive, got %v", sigma)
	}
	return LogNormal{Mu: mu, Sigma: sigma}, nil
}

// LogNormalFromMoments returns the log-normal with the given (arithmetic)
// mean and median: mu = ln(median), sigma = sqrt(2 ln(mean/median)). It
// requires mean > median > 0, which holds for any right-skewed target.
func LogNormalFromMoments(mean, median float64) (LogNormal, error) {
	if !(median > 0) || !(mean > median) {
		return LogNormal{}, fmt.Errorf("dist: lognormal needs mean > median > 0, got mean=%v median=%v", mean, median)
	}
	return LogNormal{Mu: math.Log(median), Sigma: math.Sqrt(2 * math.Log(mean/median))}, nil
}

// Sample draws a variate.
func (l LogNormal) Sample(rng *rand.Rand) float64 {
	return math.Exp(l.Mu + l.Sigma*rng.NormFloat64())
}

// Mean returns exp(mu + sigma^2/2).
func (l LogNormal) Mean() float64 { return math.Exp(l.Mu + l.Sigma*l.Sigma/2) }

// Var returns the variance.
func (l LogNormal) Var() float64 {
	s2 := l.Sigma * l.Sigma
	return math.Expm1(s2) * math.Exp(2*l.Mu+s2)
}

// Median returns exp(mu).
func (l LogNormal) Median() float64 { return math.Exp(l.Mu) }

// CDF returns Phi((ln x - mu)/sigma).
func (l LogNormal) CDF(x float64) float64 {
	if x <= 0 {
		return 0
	}
	return 0.5 * math.Erfc(-(math.Log(x)-l.Mu)/(l.Sigma*math.Sqrt2))
}

// Quantile inverts the CDF using the normal quantile.
func (l LogNormal) Quantile(p float64) float64 {
	if p < 0 || p > 1 || math.IsNaN(p) {
		return math.NaN()
	}
	switch p {
	case 0:
		return 0
	case 1:
		return math.Inf(1)
	}
	return math.Exp(l.Mu + l.Sigma*normalQuantile(p))
}

// String implements fmt.Stringer.
func (l LogNormal) String() string {
	return fmt.Sprintf("LogNormal(mu=%.4g, sigma=%.4g)", l.Mu, l.Sigma)
}

// normalQuantile returns the standard normal quantile using the
// Beasley-Springer-Moro refinement of Acklam's rational approximation,
// accurate to ~1e-9 across (0, 1).
func normalQuantile(p float64) float64 {
	// Coefficients for the central and tail rational approximations.
	a := [6]float64{-3.969683028665376e+01, 2.209460984245205e+02, -2.759285104469687e+02,
		1.383577518672690e+02, -3.066479806614716e+01, 2.506628277459239e+00}
	b := [5]float64{-5.447609879822406e+01, 1.615858368580409e+02, -1.556989798598866e+02,
		6.680131188771972e+01, -1.328068155288572e+01}
	c := [6]float64{-7.784894002430293e-03, -3.223964580411365e-01, -2.400758277161838e+00,
		-2.549732539343734e+00, 4.374664141464968e+00, 2.938163982698783e+00}
	d := [4]float64{7.784695709041462e-03, 3.224671290700398e-01, 2.445134137142996e+00,
		3.754408661907416e+00}
	const plow = 0.02425
	switch {
	case p < plow:
		q := math.Sqrt(-2 * math.Log(p))
		return (((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	case p > 1-plow:
		q := math.Sqrt(-2 * math.Log(1-p))
		return -(((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	default:
		q := p - 0.5
		r := q * q
		return (((((a[0]*r+a[1])*r+a[2])*r+a[3])*r+a[4])*r + a[5]) * q /
			(((((b[0]*r+b[1])*r+b[2])*r+b[3])*r+b[4])*r + 1)
	}
}
