package dist

import (
	"math"
	"testing"
)

func TestExponentialContract(t *testing.T) {
	e, err := NewExponential(15.3)
	if err != nil {
		t.Fatal(err)
	}
	checkDistribution(t, e)
}

func TestExponentialAnalytic(t *testing.T) {
	e, _ := NewExponential(15)
	if !almostEqual(e.Mean(), 15, 1e-12) || !almostEqual(e.Var(), 225, 1e-12) {
		t.Errorf("moments = %v, %v", e.Mean(), e.Var())
	}
	if !almostEqual(e.Rate(), 1.0/15, 1e-12) {
		t.Errorf("rate = %v", e.Rate())
	}
	// The Tsubame-2 signature: p75 = mean * ln 4 ~ 20.8 for mean 15.
	if !almostEqual(e.Quantile(0.75), 15*math.Log(4), 1e-9) {
		t.Errorf("p75 = %v, want %v", e.Quantile(0.75), 15*math.Log(4))
	}
	if !math.IsInf(e.Quantile(1), 1) {
		t.Error("Quantile(1) should be +Inf")
	}
}

func TestNewExponentialRejectsBadMean(t *testing.T) {
	for _, mean := range []float64{0, -1, math.NaN()} {
		if _, err := NewExponential(mean); err == nil {
			t.Errorf("NewExponential(%v) should fail", mean)
		}
	}
}

func TestWeibullContract(t *testing.T) {
	for _, k := range []float64{0.74, 1.0, 2.0} {
		w, err := NewWeibull(k, 50)
		if err != nil {
			t.Fatal(err)
		}
		checkDistribution(t, w)
	}
}

func TestWeibullReducesToExponential(t *testing.T) {
	w, _ := NewWeibull(1, 20)
	e, _ := NewExponential(20)
	for _, x := range []float64{0.5, 5, 20, 80} {
		if !almostEqual(w.CDF(x), e.CDF(x), 1e-12) {
			t.Errorf("Weibull(1) CDF(%v) = %v, exponential = %v", x, w.CDF(x), e.CDF(x))
		}
	}
}

func TestWeibullFromMean(t *testing.T) {
	w, err := WeibullFromMean(0.74, 72.6)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(w.Mean(), 72.6, 1e-9) {
		t.Errorf("mean = %v, want 72.6", w.Mean())
	}
	// The Tsubame-3 signature: shape < 1 puts p75 below the exponential's
	// mean*ln4 while stretching the tail.
	exponentialP75 := 72.6 * math.Log(4)
	if w.Quantile(0.75) >= exponentialP75 {
		t.Errorf("p75 = %v, want below exponential %v", w.Quantile(0.75), exponentialP75)
	}
	if w.Quantile(0.99) <= 72.6*math.Log(100) {
		t.Errorf("p99 = %v, want above exponential tail %v", w.Quantile(0.99), 72.6*math.Log(100))
	}
}

func TestNewWeibullRejectsBadParams(t *testing.T) {
	if _, err := NewWeibull(0, 1); err == nil {
		t.Error("shape 0 should fail")
	}
	if _, err := NewWeibull(1, 0); err == nil {
		t.Error("scale 0 should fail")
	}
	if _, err := WeibullFromMean(-1, 5); err == nil {
		t.Error("negative shape should fail")
	}
}

func TestLogNormalContract(t *testing.T) {
	l, err := NewLogNormal(3, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	checkDistribution(t, l)
}

func TestLogNormalFromMoments(t *testing.T) {
	l, err := LogNormalFromMoments(55, 30)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(l.Mean(), 55, 1e-9) {
		t.Errorf("mean = %v, want 55", l.Mean())
	}
	if !almostEqual(l.Median(), 30, 1e-9) {
		t.Errorf("median = %v, want 30", l.Median())
	}
	if !almostEqual(l.CDF(30), 0.5, 1e-9) {
		t.Errorf("CDF(median) = %v, want 0.5", l.CDF(30))
	}
	if _, err := LogNormalFromMoments(30, 55); err == nil {
		t.Error("mean < median should fail")
	}
	if _, err := LogNormalFromMoments(55, 0); err == nil {
		t.Error("zero median should fail")
	}
}

func TestNormalQuantile(t *testing.T) {
	tests := []struct {
		p, want float64
	}{
		{0.5, 0},
		{0.975, 1.959964},
		{0.025, -1.959964},
		{0.841344746, 1}, // Phi(1)
		{0.999, 3.090232},
	}
	for _, tt := range tests {
		if got := normalQuantile(tt.p); !almostEqual(got, tt.want, 1e-5) {
			t.Errorf("normalQuantile(%v) = %v, want %v", tt.p, got, tt.want)
		}
	}
}

func TestGammaContract(t *testing.T) {
	for _, alpha := range []float64{0.5, 1.0, 3.7} {
		g, err := NewGamma(alpha, 10)
		if err != nil {
			t.Fatal(err)
		}
		checkDistribution(t, g)
	}
}

func TestGammaReducesToExponential(t *testing.T) {
	g, _ := NewGamma(1, 25)
	e, _ := NewExponential(25)
	for _, x := range []float64{1, 10, 25, 100} {
		if !almostEqual(g.CDF(x), e.CDF(x), 1e-9) {
			t.Errorf("Gamma(1) CDF(%v) = %v, exponential = %v", x, g.CDF(x), e.CDF(x))
		}
	}
}

func TestNewGammaRejectsBadParams(t *testing.T) {
	if _, err := NewGamma(0, 1); err == nil {
		t.Error("shape 0 should fail")
	}
	if _, err := NewGamma(1, -2); err == nil {
		t.Error("negative scale should fail")
	}
}

func TestEmpiricalExactResample(t *testing.T) {
	obs := []float64{10, 20, 30}
	e, err := NewEmpirical(obs, false)
	if err != nil {
		t.Fatal(err)
	}
	rng := NewRNG(3)
	seen := make(map[float64]bool)
	for i := 0; i < 300; i++ {
		x := e.Sample(rng)
		seen[x] = true
		if x != 10 && x != 20 && x != 30 {
			t.Fatalf("exact resample produced %v", x)
		}
	}
	if len(seen) != 3 {
		t.Errorf("300 draws hit only %d of 3 observations", len(seen))
	}
	if e.N() != 3 || !almostEqual(e.Mean(), 20, 1e-12) {
		t.Errorf("N/Mean = %d/%v", e.N(), e.Mean())
	}
}

func TestEmpiricalSmooth(t *testing.T) {
	obs := []float64{0, 100}
	e, err := NewEmpirical(obs, true)
	if err != nil {
		t.Fatal(err)
	}
	// The full contract check does not apply: the empirical CDF is a step
	// function while smooth sampling interpolates, so CDF(Quantile(p))
	// intentionally differs from p between observations.
	rng := NewRNG(8)
	interpolated := false
	for i := 0; i < 100; i++ {
		x := e.Sample(rng)
		if x > 1 && x < 99 {
			interpolated = true
		}
		if x < 0 || x > 100 {
			t.Fatalf("smooth sample %v outside hull", x)
		}
	}
	if !interpolated {
		t.Error("smooth sampling never interpolated between observations")
	}
}

func TestNewEmpiricalEmpty(t *testing.T) {
	if _, err := NewEmpirical(nil, false); err == nil {
		t.Error("empty observations should fail")
	}
}

func TestMixtureContract(t *testing.T) {
	quick, _ := NewLogNormal(2, 0.5)
	slow, _ := NewLogNormal(4.5, 0.6)
	m, err := NewMixture([]Distribution{quick, slow}, []float64{0.7, 0.3})
	if err != nil {
		t.Fatal(err)
	}
	checkDistribution(t, m)
}

func TestMixtureMoments(t *testing.T) {
	a, _ := NewExponential(10)
	b, _ := NewExponential(100)
	m, err := NewMixture([]Distribution{a, b}, []float64{1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(m.Mean(), 55, 1e-9) {
		t.Errorf("mixture mean = %v, want 55", m.Mean())
	}
	// Law of total variance: 0.5*(100+10000) + 0.5*(45^2+45^2) = 7075.
	if !almostEqual(m.Var(), 7075, 1e-6) {
		t.Errorf("mixture variance = %v, want 7075", m.Var())
	}
}

func TestNewMixtureErrors(t *testing.T) {
	e, _ := NewExponential(1)
	if _, err := NewMixture(nil, nil); err == nil {
		t.Error("empty mixture should fail")
	}
	if _, err := NewMixture([]Distribution{e}, []float64{1, 2}); err == nil {
		t.Error("weight/component mismatch should fail")
	}
	if _, err := NewMixture([]Distribution{e}, []float64{-1}); err == nil {
		t.Error("negative weight should fail")
	}
	if _, err := NewMixture([]Distribution{e}, []float64{0}); err == nil {
		t.Error("zero-sum weights should fail")
	}
}

func TestShifted(t *testing.T) {
	base, _ := NewExponential(10)
	s, err := NewShifted(base, 5)
	if err != nil {
		t.Fatal(err)
	}
	checkDistribution(t, s)
	if !almostEqual(s.Mean(), 15, 1e-12) {
		t.Errorf("shifted mean = %v, want 15", s.Mean())
	}
	if s.CDF(4.9) != 0 {
		t.Errorf("CDF below offset = %v, want 0", s.CDF(4.9))
	}
	rng := NewRNG(5)
	for i := 0; i < 200; i++ {
		if x := s.Sample(rng); x < 5 {
			t.Fatalf("shifted sample %v below offset", x)
		}
	}
	if _, err := NewShifted(nil, 1); err == nil {
		t.Error("nil base should fail")
	}
	if _, err := NewShifted(base, -1); err == nil {
		t.Error("negative offset should fail")
	}
}

func TestTruncated(t *testing.T) {
	base, _ := NewLogNormal(4, 1)
	tr, err := NewTruncated(base, 290)
	if err != nil {
		t.Fatal(err)
	}
	rng := NewRNG(17)
	for i := 0; i < 5000; i++ {
		if x := tr.Sample(rng); x > 290 {
			t.Fatalf("truncated sample %v above cap", x)
		}
	}
	if tr.CDF(290) != 1 {
		t.Errorf("CDF(cap) = %v, want 1", tr.CDF(290))
	}
	if tr.Mean() >= base.Mean() {
		t.Errorf("truncated mean %v should be below base mean %v", tr.Mean(), base.Mean())
	}
	// Quantile stays within [0, cap].
	for p := 0.0; p <= 1.0; p += 0.1 {
		q := tr.Quantile(p)
		if q < 0 || q > 290+1e-9 {
			t.Errorf("Quantile(%v) = %v outside [0, 290]", p, q)
		}
	}
	if _, err := NewTruncated(nil, 1); err == nil {
		t.Error("nil base should fail")
	}
	if _, err := NewTruncated(base, 0); err == nil {
		t.Error("non-positive cap should fail")
	}
	// A cap keeping <1% of the mass is rejected (rejection sampling would
	// stall).
	if _, err := NewTruncated(base, 0.01); err == nil {
		t.Error("cap below the 1% quantile should fail")
	}
}

func TestStringers(t *testing.T) {
	e, _ := NewExponential(15)
	w, _ := NewWeibull(0.74, 80)
	l, _ := NewLogNormal(3, 1)
	g, _ := NewGamma(2, 5)
	m, _ := NewMixture([]Distribution{e}, []float64{1})
	for _, d := range []Distribution{e, w, l, g, m} {
		if d.String() == "" {
			t.Errorf("%T has empty String()", d)
		}
	}
}

func TestExponentialHazardConstant(t *testing.T) {
	e, _ := NewExponential(15)
	for _, x := range []float64{0, 1, 15, 100} {
		if got := e.Hazard(x); !almostEqual(got, 1.0/15, 1e-12) {
			t.Errorf("h(%v) = %v, want 1/15", x, got)
		}
	}
	if e.Hazard(-1) != 0 {
		t.Error("negative age hazard should be 0")
	}
}

func TestWeibullHazardMonotonicity(t *testing.T) {
	// Shape < 1: decreasing hazard (the Tsubame-3 TBF regime).
	infant, _ := NewWeibull(0.74, 80)
	if !(infant.Hazard(1) > infant.Hazard(10) && infant.Hazard(10) > infant.Hazard(100)) {
		t.Error("k<1 hazard should decrease with age")
	}
	if !math.IsInf(infant.Hazard(0), 1) {
		t.Error("k<1 hazard at 0 should be +Inf")
	}
	// Shape > 1: increasing (wear-out).
	wearout, _ := NewWeibull(2, 80)
	if !(wearout.Hazard(1) < wearout.Hazard(10) && wearout.Hazard(10) < wearout.Hazard(100)) {
		t.Error("k>1 hazard should increase with age")
	}
	if wearout.Hazard(0) != 0 {
		t.Error("k>1 hazard at 0 should be 0")
	}
	// Shape = 1 reduces to the exponential's constant rate.
	exp1, _ := NewWeibull(1, 80)
	for _, x := range []float64{0, 5, 50} {
		if got := exp1.Hazard(x); !almostEqual(got, 1.0/80, 1e-12) {
			t.Errorf("k=1 h(%v) = %v, want 1/80", x, got)
		}
	}
}

func TestLogNormalHazardNonMonotone(t *testing.T) {
	l, _ := NewLogNormal(3, 1)
	// Rises from ~0, peaks, then falls: check low < mid and late < peak
	// region.
	early := l.Hazard(0.5)
	mid := l.Hazard(20)
	late := l.Hazard(2000)
	if !(early < mid) {
		t.Errorf("hazard should rise early: h(0.5)=%v h(20)=%v", early, mid)
	}
	if !(late < mid) {
		t.Errorf("hazard should fall late: h(2000)=%v h(20)=%v", late, mid)
	}
	if l.Hazard(0) != 0 {
		t.Error("hazard at 0 should be 0")
	}
}

func TestNumericHazardMatchesAnalytic(t *testing.T) {
	w, _ := NewWeibull(0.74, 80)
	for _, x := range []float64{5, 20, 80, 200} {
		analytic := w.Hazard(x)
		numeric := NumericHazard(w, x, 1e-4)
		if math.Abs(numeric-analytic) > 0.02*analytic {
			t.Errorf("numeric h(%v) = %v vs analytic %v", x, numeric, analytic)
		}
	}
	if !math.IsNaN(NumericHazard(nil, 1, 0.1)) {
		t.Error("nil distribution should give NaN")
	}
	if !math.IsNaN(NumericHazard(w, 1, 0)) {
		t.Error("zero eps should give NaN")
	}
}
