package dist

import "math"

// Hazard functions h(x) = f(x)/S(x): the instantaneous failure rate at
// age x given survival to x. They drive the aging/burn-in discussion of
// the survival extension: exponential lifetimes have constant hazard,
// Weibull shape < 1 decreasing hazard (infant mortality), shape > 1
// increasing (wear-out).

// Hazard returns the exponential's constant rate 1/mean.
func (e Exponential) Hazard(x float64) float64 {
	if x < 0 {
		return 0
	}
	return 1 / e.MeanVal
}

// Hazard returns (k/lambda) * (x/lambda)^(k-1).
func (w Weibull) Hazard(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x == 0 {
		switch {
		case w.K < 1:
			return math.Inf(1)
		case w.K == 1:
			return 1 / w.Lambda
		default:
			return 0
		}
	}
	return w.K / w.Lambda * math.Pow(x/w.Lambda, w.K-1)
}

// Hazard returns the log-normal hazard f(x)/S(x) (non-monotone: rises
// then falls, the classic repair-time signature).
func (l LogNormal) Hazard(x float64) float64 {
	if x <= 0 {
		return 0
	}
	z := (math.Log(x) - l.Mu) / l.Sigma
	pdf := math.Exp(-z*z/2) / (x * l.Sigma * math.Sqrt(2*math.Pi))
	surv := 1 - l.CDF(x)
	if surv <= 0 {
		return math.Inf(1)
	}
	return pdf / surv
}

// NumericHazard estimates any distribution's hazard at x from its CDF by
// the finite difference h(x) ~ [S(x) - S(x+eps)] / (eps * S(x)). It backs
// hazard plots for families without a closed form (mixtures, empiricals).
func NumericHazard(d Distribution, x, eps float64) float64 {
	if d == nil || x < 0 || !(eps > 0) {
		return math.NaN()
	}
	s0 := 1 - d.CDF(x)
	s1 := 1 - d.CDF(x+eps)
	if s0 <= 0 {
		return math.Inf(1)
	}
	return (s0 - s1) / (eps * s0)
}
