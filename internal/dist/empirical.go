package dist

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// Empirical resamples a fixed set of observations (with linear
// interpolation between order statistics when Smooth is set). It lets the
// simulator replay repair-time behaviour taken directly from an analyzed
// log instead of a parametric fit.
type Empirical struct {
	sorted []float64
	smooth bool
}

// NewEmpirical builds an empirical distribution from xs (copied).
// smooth=true interpolates between order statistics on sampling, producing
// a continuous variate; smooth=false resamples the observations exactly.
func NewEmpirical(xs []float64, smooth bool) (*Empirical, error) {
	if len(xs) == 0 {
		return nil, fmt.Errorf("dist: empirical distribution needs at least one observation")
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	return &Empirical{sorted: sorted, smooth: smooth}, nil
}

// Sample draws a variate.
func (e *Empirical) Sample(rng *rand.Rand) float64 {
	if !e.smooth {
		return e.sorted[rng.Intn(len(e.sorted))]
	}
	return e.Quantile(rng.Float64())
}

// Mean returns the sample mean.
func (e *Empirical) Mean() float64 {
	var sum float64
	for _, x := range e.sorted {
		sum += x
	}
	return sum / float64(len(e.sorted))
}

// Var returns the population variance of the observations.
func (e *Empirical) Var() float64 {
	m := e.Mean()
	var ss float64
	for _, x := range e.sorted {
		d := x - m
		ss += d * d
	}
	return ss / float64(len(e.sorted))
}

// CDF returns the empirical CDF at x.
func (e *Empirical) CDF(x float64) float64 {
	i := sort.SearchFloat64s(e.sorted, x)
	for i < len(e.sorted) && e.sorted[i] == x {
		i++
	}
	return float64(i) / float64(len(e.sorted))
}

// Quantile returns the type-7 interpolated quantile.
func (e *Empirical) Quantile(p float64) float64 {
	if p < 0 || p > 1 || math.IsNaN(p) {
		return math.NaN()
	}
	n := len(e.sorted)
	if n == 1 {
		return e.sorted[0]
	}
	h := p * float64(n-1)
	lo := int(math.Floor(h))
	if lo >= n-1 {
		return e.sorted[n-1]
	}
	frac := h - float64(lo)
	return e.sorted[lo]*(1-frac) + e.sorted[lo+1]*frac
}

// N returns the number of underlying observations.
func (e *Empirical) N() int { return len(e.sorted) }

// String implements fmt.Stringer.
func (e *Empirical) String() string {
	return fmt.Sprintf("Empirical(n=%d, mean=%.4g)", len(e.sorted), e.Mean())
}
