package dist

import (
	"math"
	"testing"
	"testing/quick"
)

func sampleN(d Distribution, n int, seed int64) []float64 {
	rng := NewRNG(seed)
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = d.Sample(rng)
	}
	return xs
}

func TestFitExponentialRecovers(t *testing.T) {
	truth, _ := NewExponential(15.3)
	xs := sampleN(truth, 20000, 1)
	fit, err := FitExponential(xs)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fit.MeanVal-15.3) > 0.5 {
		t.Errorf("fitted mean = %v, want ~15.3", fit.MeanVal)
	}
}

func TestFitExponentialErrors(t *testing.T) {
	if _, err := FitExponential(nil); err == nil {
		t.Error("empty sample should fail")
	}
	if _, err := FitExponential([]float64{1, -2}); err == nil {
		t.Error("negative observation should fail")
	}
	if _, err := FitExponential([]float64{1, 0}); err == nil {
		t.Error("zero observation should fail")
	}
}

func TestFitWeibullRecovers(t *testing.T) {
	for _, shape := range []float64{0.74, 1.5} {
		truth, _ := NewWeibull(shape, 80)
		xs := sampleN(truth, 20000, 2)
		fit, err := FitWeibull(xs)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(fit.K-shape) > 0.05*shape+0.02 {
			t.Errorf("fitted shape = %v, want ~%v", fit.K, shape)
		}
		if math.Abs(fit.Lambda-80) > 3 {
			t.Errorf("fitted scale = %v, want ~80", fit.Lambda)
		}
	}
}

func TestFitWeibullErrors(t *testing.T) {
	if _, err := FitWeibull([]float64{5}); err == nil {
		t.Error("single observation should fail")
	}
	if _, err := FitWeibull([]float64{1, -1}); err == nil {
		t.Error("negative observation should fail")
	}
}

func TestFitLogNormalRecovers(t *testing.T) {
	truth, _ := NewLogNormal(3.4, 0.9)
	xs := sampleN(truth, 20000, 3)
	fit, err := FitLogNormal(xs)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fit.Mu-3.4) > 0.03 || math.Abs(fit.Sigma-0.9) > 0.03 {
		t.Errorf("fit = (%v, %v), want ~(3.4, 0.9)", fit.Mu, fit.Sigma)
	}
}

func TestFitLogNormalErrors(t *testing.T) {
	if _, err := FitLogNormal([]float64{5}); err == nil {
		t.Error("single observation should fail")
	}
	if _, err := FitLogNormal([]float64{1, 0}); err == nil {
		t.Error("zero observation should fail")
	}
	if _, err := FitLogNormal([]float64{7, 7, 7}); err == nil {
		t.Error("degenerate sample should fail")
	}
}

func TestFitBestSelectsGeneratingFamily(t *testing.T) {
	tests := []struct {
		name  string
		truth Distribution
		want  string
	}{
		{"weibull 0.74", mustWeibull(t, 0.74, 72), "weibull"},
		{"lognormal", mustLogNormal(t, 3.2, 1.1), "lognormal"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			xs := sampleN(tt.truth, 15000, 4)
			best, err := FitBest(xs)
			if err != nil {
				t.Fatal(err)
			}
			if best.Name != tt.want {
				t.Errorf("selected %q (KS=%v), want %q", best.Name, best.KS, tt.want)
			}
		})
	}
}

func TestFitAllOrderedByKS(t *testing.T) {
	truth, _ := NewExponential(20)
	xs := sampleN(truth, 5000, 5)
	fits, err := FitAll(xs)
	if err != nil {
		t.Fatal(err)
	}
	if len(fits) != 3 {
		t.Fatalf("FitAll returned %d fits, want 3", len(fits))
	}
	for i := 1; i < len(fits); i++ {
		if fits[i].KS < fits[i-1].KS {
			t.Errorf("fits not sorted by KS: %v", fits)
		}
	}
	// Exponential data: the exponential fit's KS must be competitive —
	// within a whisker of the best (Weibull nests it and can edge ahead).
	var expKS float64
	for _, f := range fits {
		if f.Name == "exponential" {
			expKS = f.KS
		}
	}
	if expKS > fits[0].KS+0.02 {
		t.Errorf("exponential KS %v is far from best %v on exponential data", expKS, fits[0].KS)
	}
}

func TestFitAllNoFamilyFits(t *testing.T) {
	if _, err := FitAll([]float64{-1, -2}); err == nil {
		t.Error("all-negative sample should fail")
	}
}

func mustWeibull(t *testing.T, k, lambda float64) Weibull {
	t.Helper()
	w, err := NewWeibull(k, lambda)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func mustLogNormal(t *testing.T, mu, sigma float64) LogNormal {
	t.Helper()
	l, err := NewLogNormal(mu, sigma)
	if err != nil {
		t.Fatal(err)
	}
	return l
}

// Property: the Weibull MLE shape equation is satisfied at the returned
// fit, and FitExponential returns the sample mean exactly.
func TestFitExponentialIsSampleMeanProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := NewRNG(seed)
		n := 2 + rng.Intn(50)
		xs := make([]float64, n)
		var sum float64
		for i := range xs {
			xs[i] = rng.ExpFloat64()*40 + 1e-9
			sum += xs[i]
		}
		fit, err := FitExponential(xs)
		if err != nil {
			return false
		}
		return math.Abs(fit.MeanVal-sum/float64(n)) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestPointDistribution(t *testing.T) {
	p, err := NewPoint(7.5)
	if err != nil {
		t.Fatal(err)
	}
	rng := NewRNG(1)
	for i := 0; i < 10; i++ {
		if p.Sample(rng) != 7.5 {
			t.Fatal("point mass sampled a different value")
		}
	}
	if p.Mean() != 7.5 || p.Var() != 0 {
		t.Errorf("moments = %v, %v", p.Mean(), p.Var())
	}
	if p.CDF(7.4) != 0 || p.CDF(7.5) != 1 {
		t.Error("CDF should step at the value")
	}
	if p.Quantile(0.3) != 7.5 {
		t.Error("quantile should be the value")
	}
	if !math.IsNaN(p.Quantile(-1)) {
		t.Error("invalid quantile should be NaN")
	}
	if _, err := NewPoint(-1); err == nil {
		t.Error("negative point mass should fail")
	}
}

func TestFitAICPrefersGeneratingFamily(t *testing.T) {
	truth, _ := NewLogNormal(3.2, 1.1)
	xs := sampleN(truth, 10000, 9)
	fits, err := FitAll(xs)
	if err != nil {
		t.Fatal(err)
	}
	bestAIC := fits[0]
	for _, f := range fits[1:] {
		if f.AIC < bestAIC.AIC {
			bestAIC = f
		}
	}
	if bestAIC.Name != "lognormal" {
		t.Errorf("AIC selected %q, want lognormal", bestAIC.Name)
	}
}

func TestLogLikelihoodFiniteness(t *testing.T) {
	e, _ := NewExponential(15)
	w, _ := NewWeibull(0.74, 80)
	l, _ := NewLogNormal(3, 1)
	xs := sampleN(e, 500, 2)
	for name, ll := range map[string]float64{
		"exp":     exponentialLogLik(e, xs),
		"weibull": weibullLogLik(w, xs),
		"lognorm": logNormalLogLik(l, xs),
	} {
		if math.IsNaN(ll) || math.IsInf(ll, 0) {
			t.Errorf("%s log-likelihood = %v", name, ll)
		}
	}
	// The true family should have the highest likelihood on its own data.
	fitted, _ := FitExponential(xs)
	if exponentialLogLik(fitted, xs) < weibullLogLik(w, xs) {
		t.Error("fitted exponential should beat an arbitrary Weibull on exponential data")
	}
}
