package dist

// SortCount exposes the fitting path's sample-sort counter to the
// single-sort regression tests.
func SortCount() int64 { return fitSortCount.Load() }
