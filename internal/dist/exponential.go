package dist

import (
	"fmt"
	"math"
	"math/rand"
)

// Exponential is the exponential distribution with the given Mean (hours).
// It is the memoryless baseline model for time-between-failures; the paper
// notes Tsubame-2's TBF distribution is close to exponential (mean 15 h,
// 75th percentile 20 h ~= 15*ln 4).
type Exponential struct {
	MeanVal float64
}

// NewExponential returns an exponential distribution with the given mean.
// It returns an error for non-positive means.
func NewExponential(mean float64) (Exponential, error) {
	if !(mean > 0) {
		return Exponential{}, fmt.Errorf("dist: exponential mean must be positive, got %v", mean)
	}
	return Exponential{MeanVal: mean}, nil
}

// Sample draws a variate.
func (e Exponential) Sample(rng *rand.Rand) float64 {
	return rng.ExpFloat64() * e.MeanVal
}

// Mean returns the mean.
func (e Exponential) Mean() float64 { return e.MeanVal }

// Var returns the variance mean^2.
func (e Exponential) Var() float64 { return e.MeanVal * e.MeanVal }

// Rate returns the hazard rate 1/mean.
func (e Exponential) Rate() float64 { return 1 / e.MeanVal }

// CDF returns 1 - exp(-x/mean) for x >= 0.
func (e Exponential) CDF(x float64) float64 {
	if x <= 0 {
		return 0
	}
	return -math.Expm1(-x / e.MeanVal)
}

// Quantile returns -mean * ln(1-p).
func (e Exponential) Quantile(p float64) float64 {
	if p < 0 || p > 1 || math.IsNaN(p) {
		return math.NaN()
	}
	if p == 1 {
		return math.Inf(1)
	}
	return -e.MeanVal * math.Log1p(-p)
}

// String implements fmt.Stringer.
func (e Exponential) String() string {
	return fmt.Sprintf("Exponential(mean=%.4g)", e.MeanVal)
}
