package dist

import (
	"fmt"
	"math"
	"math/rand"
)

// Gamma is the gamma distribution with shape Alpha and scale Theta
// (mean Alpha*Theta). It models repair-time components that are sums of
// stage durations (diagnose + procure + replace).
type Gamma struct {
	Alpha float64 // shape
	Theta float64 // scale
}

// NewGamma returns a gamma distribution with the given shape and scale.
// Both must be positive.
func NewGamma(shape, scale float64) (Gamma, error) {
	if !(shape > 0) || !(scale > 0) {
		return Gamma{}, fmt.Errorf("dist: gamma shape and scale must be positive, got alpha=%v theta=%v", shape, scale)
	}
	return Gamma{Alpha: shape, Theta: scale}, nil
}

// Sample draws a variate using the Marsaglia-Tsang squeeze method, with
// the standard boost for shape < 1.
func (g Gamma) Sample(rng *rand.Rand) float64 {
	alpha := g.Alpha
	boost := 1.0
	if alpha < 1 {
		// X_alpha = X_{alpha+1} * U^{1/alpha}
		boost = math.Pow(1-rng.Float64(), 1/alpha)
		alpha++
	}
	d := alpha - 1.0/3.0
	c := 1 / math.Sqrt(9*d)
	for {
		var x, v float64
		for {
			x = rng.NormFloat64()
			v = 1 + c*x
			if v > 0 {
				break
			}
		}
		v = v * v * v
		u := rng.Float64()
		if u < 1-0.0331*x*x*x*x {
			return g.Theta * boost * d * v
		}
		if math.Log(u) < 0.5*x*x+d*(1-v+math.Log(v)) {
			return g.Theta * boost * d * v
		}
	}
}

// Mean returns alpha*theta.
func (g Gamma) Mean() float64 { return g.Alpha * g.Theta }

// Var returns alpha*theta^2.
func (g Gamma) Var() float64 { return g.Alpha * g.Theta * g.Theta }

// CDF returns the regularized lower incomplete gamma P(alpha, x/theta).
func (g Gamma) CDF(x float64) float64 {
	if x <= 0 {
		return 0
	}
	return regularizedGammaP(g.Alpha, x/g.Theta)
}

// Quantile inverts the CDF by bisection.
func (g Gamma) Quantile(p float64) float64 {
	if p < 0 || p > 1 || math.IsNaN(p) {
		return math.NaN()
	}
	if p == 1 {
		return math.Inf(1)
	}
	// Mean + 20 standard deviations generously brackets any quantile the
	// analyses request.
	hi := g.Mean() + 20*math.Sqrt(g.Var())
	return quantileBisect(g.CDF, p, 0, hi)
}

// String implements fmt.Stringer.
func (g Gamma) String() string {
	return fmt.Sprintf("Gamma(alpha=%.4g, theta=%.4g)", g.Alpha, g.Theta)
}

// regularizedGammaP mirrors stats.RegularizedGammaP; it is duplicated here
// (30 lines) to keep dist free of a dependency on the higher-level stats
// package.
func regularizedGammaP(a, x float64) float64 {
	switch {
	case a <= 0 || x < 0 || math.IsNaN(a) || math.IsNaN(x):
		return math.NaN()
	case x == 0:
		return 0
	}
	lg, _ := math.Lgamma(a)
	if x < a+1 {
		ap := a
		sum := 1 / a
		del := sum
		for i := 0; i < 500; i++ {
			ap++
			del *= x / ap
			sum += del
			if math.Abs(del) < math.Abs(sum)*1e-14 {
				break
			}
		}
		return sum * math.Exp(-x+a*math.Log(x)-lg)
	}
	const tiny = 1e-300
	b := x + 1 - a
	c := 1 / tiny
	d := 1 / b
	h := d
	for i := 1; i <= 500; i++ {
		an := -float64(i) * (float64(i) - a)
		b += 2
		d = an*d + b
		if math.Abs(d) < tiny {
			d = tiny
		}
		c = b + an/c
		if math.Abs(c) < tiny {
			c = tiny
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < 1e-14 {
			break
		}
	}
	return 1 - math.Exp(-x+a*math.Log(x)-lg)*h
}
