package dist

import (
	"fmt"
	"math"
	"math/rand"
)

// Shifted translates a base distribution right by Offset, modelling a
// minimum duration (a repair can never take less than the travel/triage
// floor; an inter-failure gap is never exactly zero in the logs).
type Shifted struct {
	Base   Distribution
	Offset float64
}

// NewShifted wraps base with a non-negative offset.
func NewShifted(base Distribution, offset float64) (Shifted, error) {
	if base == nil {
		return Shifted{}, fmt.Errorf("dist: shifted needs a base distribution")
	}
	if offset < 0 || math.IsNaN(offset) {
		return Shifted{}, fmt.Errorf("dist: shift offset must be non-negative, got %v", offset)
	}
	return Shifted{Base: base, Offset: offset}, nil
}

// Sample draws base + offset.
func (s Shifted) Sample(rng *rand.Rand) float64 { return s.Base.Sample(rng) + s.Offset }

// Mean returns base mean + offset.
func (s Shifted) Mean() float64 { return s.Base.Mean() + s.Offset }

// Var returns the base variance (translation invariant).
func (s Shifted) Var() float64 { return s.Base.Var() }

// CDF returns base CDF at x-offset.
func (s Shifted) CDF(x float64) float64 { return s.Base.CDF(x - s.Offset) }

// Quantile returns base quantile + offset.
func (s Shifted) Quantile(p float64) float64 { return s.Base.Quantile(p) + s.Offset }

// String implements fmt.Stringer.
func (s Shifted) String() string {
	return fmt.Sprintf("Shifted(%s, +%.4g)", s.Base, s.Offset)
}

// Truncated clips a base distribution to [0, Hi] by resampling (rejection).
// The TTR samplers use it to keep synthetic repairs inside the documented
// maxima (for example ~290 h for Tsubame-2 SSD repairs).
type Truncated struct {
	Base Distribution
	Hi   float64
}

// NewTruncated wraps base, clipping to hi. hi must be positive and must
// retain at least 1% of the base mass so rejection sampling terminates
// quickly.
func NewTruncated(base Distribution, hi float64) (Truncated, error) {
	if base == nil {
		return Truncated{}, fmt.Errorf("dist: truncated needs a base distribution")
	}
	if !(hi > 0) {
		return Truncated{}, fmt.Errorf("dist: truncation bound must be positive, got %v", hi)
	}
	if base.CDF(hi) < 0.01 {
		return Truncated{}, fmt.Errorf("dist: truncation at %v keeps only %.2g%% of %v", hi, 100*base.CDF(hi), base)
	}
	return Truncated{Base: base, Hi: hi}, nil
}

// Sample rejection-samples the base until a variate lands in [0, Hi].
func (t Truncated) Sample(rng *rand.Rand) float64 {
	for {
		x := t.Base.Sample(rng)
		if x <= t.Hi {
			return x
		}
	}
}

// Mean estimates the truncated mean by numerical integration of the
// quantile function over the retained mass.
func (t Truncated) Mean() float64 {
	mass := t.Base.CDF(t.Hi)
	const steps = 2000
	var sum float64
	for i := 0; i < steps; i++ {
		p := mass * (float64(i) + 0.5) / steps
		sum += t.Base.Quantile(p)
	}
	return sum / steps
}

// Var estimates the truncated variance numerically.
func (t Truncated) Var() float64 {
	mass := t.Base.CDF(t.Hi)
	mean := t.Mean()
	const steps = 2000
	var sum float64
	for i := 0; i < steps; i++ {
		p := mass * (float64(i) + 0.5) / steps
		d := t.Base.Quantile(p) - mean
		sum += d * d
	}
	return sum / steps
}

// CDF renormalizes the base CDF over [0, Hi].
func (t Truncated) CDF(x float64) float64 {
	if x >= t.Hi {
		return 1
	}
	return t.Base.CDF(x) / t.Base.CDF(t.Hi)
}

// Quantile inverts the renormalized CDF.
func (t Truncated) Quantile(p float64) float64 {
	if p < 0 || p > 1 || math.IsNaN(p) {
		return math.NaN()
	}
	return t.Base.Quantile(p * t.Base.CDF(t.Hi))
}

// String implements fmt.Stringer.
func (t Truncated) String() string {
	return fmt.Sprintf("Truncated(%s, hi=%.4g)", t.Base, t.Hi)
}
