package dist

import (
	"fmt"
	"math"
	"sort"
	"sync/atomic"
)

// FitExponential returns the maximum-likelihood exponential fit (the sample
// mean). Non-positive observations are rejected.
func FitExponential(xs []float64) (Exponential, error) {
	mean, _, err := positiveMeanLogMean(xs)
	if err != nil {
		return Exponential{}, err
	}
	return NewExponential(mean)
}

// FitLogNormal returns the maximum-likelihood log-normal fit: mu and sigma
// are the mean and standard deviation of the log observations.
func FitLogNormal(xs []float64) (LogNormal, error) {
	if len(xs) < 2 {
		return LogNormal{}, fmt.Errorf("dist: lognormal fit needs at least 2 observations, got %d", len(xs))
	}
	logs := make([]float64, len(xs))
	for i, x := range xs {
		if !(x > 0) {
			return LogNormal{}, fmt.Errorf("dist: lognormal fit requires positive observations, got %v", x)
		}
		logs[i] = math.Log(x)
	}
	var mu float64
	for _, l := range logs {
		mu += l
	}
	mu /= float64(len(logs))
	var ss float64
	for _, l := range logs {
		d := l - mu
		ss += d * d
	}
	sigma := math.Sqrt(ss / float64(len(logs)-1))
	if sigma == 0 {
		return LogNormal{}, fmt.Errorf("dist: lognormal fit is degenerate (all observations equal)")
	}
	return NewLogNormal(mu, sigma)
}

// FitWeibull returns the maximum-likelihood Weibull fit, solving the shape
// equation g(k) = sum(x^k ln x)/sum(x^k) - 1/k - mean(ln x) = 0 by Newton
// iteration with bisection fallback, then setting the scale from the shape.
func FitWeibull(xs []float64) (Weibull, error) {
	if len(xs) < 2 {
		return Weibull{}, fmt.Errorf("dist: weibull fit needs at least 2 observations, got %d", len(xs))
	}
	logs := make([]float64, len(xs))
	var meanLog float64
	for i, x := range xs {
		if !(x > 0) {
			return Weibull{}, fmt.Errorf("dist: weibull fit requires positive observations, got %v", x)
		}
		logs[i] = math.Log(x)
		meanLog += logs[i]
	}
	meanLog /= float64(len(xs))

	g := func(k float64) float64 {
		var sxk, sxkl float64
		for i, x := range xs {
			xk := math.Pow(x, k)
			sxk += xk
			sxkl += xk * logs[i]
		}
		return sxkl/sxk - 1/k - meanLog
	}

	// g is increasing in k; bracket the root then bisect (robust against
	// the occasional flat region that defeats pure Newton).
	lo, hi := 1e-3, 1.0
	for g(hi) < 0 && hi < 1e3 {
		lo = hi
		hi *= 2
	}
	if g(hi) < 0 {
		return Weibull{}, fmt.Errorf("dist: weibull shape did not bracket within (0, %g]", hi)
	}
	for i := 0; i < 200 && hi-lo > 1e-10*(1+hi); i++ {
		mid := (lo + hi) / 2
		if g(mid) < 0 {
			lo = mid
		} else {
			hi = mid
		}
	}
	k := (lo + hi) / 2

	var sxk float64
	for _, x := range xs {
		sxk += math.Pow(x, k)
	}
	lambda := math.Pow(sxk/float64(len(xs)), 1/k)
	return NewWeibull(k, lambda)
}

// Fit pairs a fitted distribution with its goodness of fit.
type Fit struct {
	Name string
	Dist Distribution
	KS   float64 // Kolmogorov-Smirnov statistic against the sample
	// AIC is the Akaike information criterion 2k - 2 ln L (lower is
	// better); it complements KS when the families have different
	// parameter counts.
	AIC float64
}

// fitSortCount counts every sample sort the fitting path performs. The
// single-sort regression test reads it through export_test.go: FitAll on
// any sample must increment it exactly once, FitAllSorted never.
var fitSortCount atomic.Int64

// FitAll fits the exponential, Weibull, and log-normal families to xs and
// returns the fits sorted by ascending KS statistic (best first). Families
// that fail to fit are omitted; an error is returned only when no family
// fits.
//
// The sample is cloned and sorted exactly once, and every family's KS
// statistic reads the shared sorted buffer — previously each family
// re-cloned and re-sorted the sample. Callers that already hold a sorted
// sample (the analysis index's arenas) should use FitAllSorted, which
// performs no sort at all.
func FitAll(xs []float64) ([]Fit, error) {
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	fitSortCount.Add(1)
	return fitAll(xs, sorted)
}

// FitAllSorted is FitAll on an already-sorted, ascending sample: the MLE,
// log-likelihood, and KS passes all run over the given slice and no sort
// or clone happens. The per-family goodness-of-fit scoring is fused into
// a single sweep over the sorted data. The slice is not retained.
//
// Note that floating-point accumulation follows the sorted order, so
// parameters can differ from FitAll(unsorted) in the last ulp; within one
// pipeline, fit inputs consistently through one entry point.
func FitAllSorted(sorted []float64) ([]Fit, error) {
	if !sort.Float64sAreSorted(sorted) {
		return nil, fmt.Errorf("dist: FitAllSorted requires an ascending sample")
	}
	return fitAll(sorted, sorted)
}

// family pairs a fitted distribution with its parameter count and per-
// observation log-likelihood, the inputs of the fused scoring sweep.
type family struct {
	name   string
	dist   Distribution
	params int
	ll     func(x float64) float64
}

// fitAll fits every family to xs and scores against the sorted view of
// the same sample. When xs and sorted are the same slice (the FitAllSorted
// path) the log-likelihood and KS passes fuse into one sweep; otherwise
// the log-likelihood accumulates in xs order, preserving FitAll's exact
// historical results.
func fitAll(xs, sorted []float64) ([]Fit, error) {
	var families []family
	if e, err := FitExponential(xs); err == nil {
		logMean := math.Log(e.MeanVal)
		families = append(families, family{"exponential", e, 1, func(x float64) float64 {
			return -logMean - x/e.MeanVal
		}})
	}
	if w, err := FitWeibull(xs); err == nil {
		logK, logL := math.Log(w.K), math.Log(w.Lambda)
		families = append(families, family{"weibull", w, 2, func(x float64) float64 {
			z := x / w.Lambda
			return logK - logL + (w.K-1)*(math.Log(x)-logL) - math.Pow(z, w.K)
		}})
	}
	if l, err := FitLogNormal(xs); err == nil {
		c := -0.5*math.Log(2*math.Pi) - math.Log(l.Sigma)
		families = append(families, family{"lognormal", l, 2, func(x float64) float64 {
			z := (math.Log(x) - l.Mu) / l.Sigma
			return c - math.Log(x) - z*z/2
		}})
	}
	if len(families) == 0 {
		return nil, fmt.Errorf("dist: no distribution family fits the sample (n=%d)", len(xs))
	}
	fused := len(xs) == len(sorted) && (len(xs) == 0 || &xs[0] == &sorted[0])
	fits := make([]Fit, len(families))
	for i, fam := range families {
		var ll, ks float64
		if fused {
			ll, ks = sweepSorted(sorted, fam.ll, fam.dist.CDF)
		} else {
			for _, x := range xs {
				ll += fam.ll(x)
			}
			ks = ksStatisticSorted(sorted, fam.dist.CDF)
		}
		fits[i] = Fit{Name: fam.name, Dist: fam.dist, KS: ks, AIC: 2*float64(fam.params) - 2*ll}
	}
	sort.Slice(fits, func(i, j int) bool { return fits[i].KS < fits[j].KS })
	return fits, nil
}

// sweepSorted is the fused scoring pass of the pre-sorted path: one loop
// over the sorted sample accumulates the log-likelihood and tracks the KS
// supremum simultaneously.
func sweepSorted(sorted []float64, ll func(float64) float64, cdf func(float64) float64) (loglik, ks float64) {
	n := float64(len(sorted))
	for i, x := range sorted {
		loglik += ll(x)
		f := cdf(x)
		ks = math.Max(ks, math.Max(math.Abs(f-float64(i)/n), math.Abs(float64(i+1)/n-f)))
	}
	return loglik, ks
}

// FitBest returns the family with the smallest KS statistic.
func FitBest(xs []float64) (Fit, error) {
	fits, err := FitAll(xs)
	if err != nil {
		return Fit{}, err
	}
	return fits[0], nil
}

// FitBestSorted is FitBest on an already-sorted sample.
func FitBestSorted(sorted []float64) (Fit, error) {
	fits, err := FitAllSorted(sorted)
	if err != nil {
		return Fit{}, err
	}
	return fits[0], nil
}

// positiveMeanLogMean validates positivity and returns the mean and mean
// log of xs.
func positiveMeanLogMean(xs []float64) (mean, meanLog float64, err error) {
	if len(xs) == 0 {
		return 0, 0, fmt.Errorf("dist: fit needs at least 1 observation")
	}
	for _, x := range xs {
		if !(x > 0) {
			return 0, 0, fmt.Errorf("dist: fit requires positive observations, got %v", x)
		}
		mean += x
		meanLog += math.Log(x)
	}
	n := float64(len(xs))
	return mean / n, meanLog / n, nil
}

// exponentialLogLik is the exponential log-likelihood of positive xs.
// The fitting sweep in fitAll inlines this term-for-term; these three
// standalone forms remain the reference implementations the tests check.
func exponentialLogLik(e Exponential, xs []float64) float64 {
	logMean := math.Log(e.MeanVal)
	var ll float64
	for _, x := range xs {
		ll += -logMean - x/e.MeanVal
	}
	return ll
}

// weibullLogLik is the Weibull log-likelihood of positive xs.
func weibullLogLik(w Weibull, xs []float64) float64 {
	logK, logL := math.Log(w.K), math.Log(w.Lambda)
	var ll float64
	for _, x := range xs {
		z := x / w.Lambda
		ll += logK - logL + (w.K-1)*(math.Log(x)-logL) - math.Pow(z, w.K)
	}
	return ll
}

// logNormalLogLik is the log-normal log-likelihood of positive xs.
func logNormalLogLik(l LogNormal, xs []float64) float64 {
	c := -0.5*math.Log(2*math.Pi) - math.Log(l.Sigma)
	var ll float64
	for _, x := range xs {
		z := (math.Log(x) - l.Mu) / l.Sigma
		ll += c - math.Log(x) - z*z/2
	}
	return ll
}

// ksStatisticSorted computes the one-sample KS statistic over an already-
// sorted sample. It mirrors stats.KSOneSample minus the clone-and-sort;
// dist deliberately has no dependency on other internal packages. The
// fitting path sorts once and scores every family against the shared
// buffer — this function must never re-derive the order itself.
func ksStatisticSorted(sorted []float64, cdf func(float64) float64) float64 {
	n := float64(len(sorted))
	var d float64
	for i, x := range sorted {
		f := cdf(x)
		d = math.Max(d, math.Max(math.Abs(f-float64(i)/n), math.Abs(float64(i+1)/n-f)))
	}
	return d
}
