package dist

import (
	"fmt"
	"math"
	"math/rand"
)

// Weibull is the Weibull distribution with shape K and scale Lambda. Shape
// below 1 gives a decreasing hazard (bursty failures with a long tail),
// which is the model we use for Tsubame-3's TBF: the paper reports mean
// ~72 h with a 75th percentile of 93 h, lighter than the exponential's
// ~100 h, together with "a longer tail" - the signature of K < 1.
type Weibull struct {
	K      float64 // shape
	Lambda float64 // scale
}

// NewWeibull returns a Weibull distribution with the given shape and scale.
// Both must be positive.
func NewWeibull(shape, scale float64) (Weibull, error) {
	if !(shape > 0) || !(scale > 0) {
		return Weibull{}, fmt.Errorf("dist: weibull shape and scale must be positive, got k=%v lambda=%v", shape, scale)
	}
	return Weibull{K: shape, Lambda: scale}, nil
}

// WeibullFromMean returns the Weibull with the given shape whose mean
// equals mean, solving lambda = mean / Gamma(1 + 1/k).
func WeibullFromMean(shape, mean float64) (Weibull, error) {
	if !(shape > 0) || !(mean > 0) {
		return Weibull{}, fmt.Errorf("dist: weibull shape and mean must be positive, got k=%v mean=%v", shape, mean)
	}
	return Weibull{K: shape, Lambda: mean / math.Gamma(1+1/shape)}, nil
}

// Sample draws a variate by inversion.
func (w Weibull) Sample(rng *rand.Rand) float64 {
	// Use 1-U to avoid log(0); U in [0,1) so 1-U in (0,1].
	u := 1 - rng.Float64()
	return w.Lambda * math.Pow(-math.Log(u), 1/w.K)
}

// Mean returns lambda * Gamma(1 + 1/k).
func (w Weibull) Mean() float64 { return w.Lambda * math.Gamma(1+1/w.K) }

// Var returns the variance.
func (w Weibull) Var() float64 {
	g1 := math.Gamma(1 + 1/w.K)
	g2 := math.Gamma(1 + 2/w.K)
	return w.Lambda * w.Lambda * (g2 - g1*g1)
}

// CDF returns 1 - exp(-(x/lambda)^k) for x >= 0.
func (w Weibull) CDF(x float64) float64 {
	if x <= 0 {
		return 0
	}
	return -math.Expm1(-math.Pow(x/w.Lambda, w.K))
}

// Quantile returns lambda * (-ln(1-p))^(1/k).
func (w Weibull) Quantile(p float64) float64 {
	if p < 0 || p > 1 || math.IsNaN(p) {
		return math.NaN()
	}
	if p == 1 {
		return math.Inf(1)
	}
	return w.Lambda * math.Pow(-math.Log1p(-p), 1/w.K)
}

// String implements fmt.Stringer.
func (w Weibull) String() string {
	return fmt.Sprintf("Weibull(k=%.4g, lambda=%.4g)", w.K, w.Lambda)
}
