package dist

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

// weibullSample draws a deterministic positive sample large enough that a
// stray re-sort would dominate the fitting cost.
func weibullSample(n int, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	xs := make([]float64, n)
	for i := range xs {
		u := rng.Float64()
		xs[i] = 72.6 * math.Pow(-math.Log(1-u), 1/0.74)
	}
	return xs
}

// TestFitAllSortsExactlyOnce is the ISSUE-3 single-sort regression gate:
// FitAll on a 100k sample must sort it exactly once, with every family's
// KS pass reading the shared sorted buffer. Before the fix each of the
// three families cloned and re-sorted the sample.
func TestFitAllSortsExactlyOnce(t *testing.T) {
	xs := weibullSample(100_000, 7)
	before := SortCount()
	fits, err := FitAll(xs)
	if err != nil {
		t.Fatal(err)
	}
	if len(fits) != 3 {
		t.Fatalf("got %d families, want 3", len(fits))
	}
	if got := SortCount() - before; got != 1 {
		t.Errorf("FitAll performed %d sample sorts, want exactly 1", got)
	}
}

// TestFitAllSortedPerformsNoSort pins the arena path: a pre-sorted sample
// must be scored without any sort at all.
func TestFitAllSortedPerformsNoSort(t *testing.T) {
	xs := weibullSample(10_000, 8)
	sort.Float64s(xs)
	before := SortCount()
	fits, err := FitAllSorted(xs)
	if err != nil {
		t.Fatal(err)
	}
	if len(fits) != 3 {
		t.Fatalf("got %d families, want 3", len(fits))
	}
	if got := SortCount() - before; got != 0 {
		t.Errorf("FitAllSorted performed %d sample sorts, want 0", got)
	}
}

// TestFitAllSortedMatchesFitAll checks the fused sorted sweep produces
// the same ranking and statistics as the general path. Parameters may
// differ in the last ulp (accumulation order), so compare with a tight
// relative tolerance rather than bit equality.
func TestFitAllSortedMatchesFitAll(t *testing.T) {
	xs := weibullSample(20_000, 9)
	want, err := FitAll(xs)
	if err != nil {
		t.Fatal(err)
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	got, err := FitAllSorted(sorted)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("family count %d vs %d", len(got), len(want))
	}
	for i := range want {
		if got[i].Name != want[i].Name {
			t.Errorf("rank %d: %s vs %s", i, got[i].Name, want[i].Name)
		}
		if relDiff(got[i].KS, want[i].KS) > 1e-9 {
			t.Errorf("%s: KS %v vs %v", want[i].Name, got[i].KS, want[i].KS)
		}
		if relDiff(got[i].AIC, want[i].AIC) > 1e-9 {
			t.Errorf("%s: AIC %v vs %v", want[i].Name, got[i].AIC, want[i].AIC)
		}
	}
}

func TestFitAllSortedRejectsUnsorted(t *testing.T) {
	if _, err := FitAllSorted([]float64{3, 1, 2}); err == nil {
		t.Error("unsorted input must be rejected")
	}
}

func TestFitBestSortedMatchesFitBest(t *testing.T) {
	xs := weibullSample(5_000, 10)
	want, err := FitBest(xs)
	if err != nil {
		t.Fatal(err)
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	got, err := FitBestSorted(sorted)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != want.Name {
		t.Errorf("best family %s vs %s", got.Name, want.Name)
	}
}

// TestFitAllManySortedMatchesPerSample pins the batch arena entry point
// to its per-sample form under several pool widths.
func TestFitAllManySortedMatchesPerSample(t *testing.T) {
	samples := [][]float64{
		weibullSample(500, 11),
		weibullSample(700, 12),
		{-1, -2}, // no family fits: per-sample error, batch continues
	}
	for i := range samples[:2] {
		sort.Float64s(samples[i])
	}
	for _, width := range []int{1, 2, 4} {
		got := FitAllManySorted(samples, width)
		if len(got) != len(samples) {
			t.Fatalf("width %d: got %d results, want %d", width, len(got), len(samples))
		}
		for i, sf := range got[:2] {
			want, err := FitAllSorted(samples[i])
			if err != nil || sf.Err != nil {
				t.Fatalf("width %d sample %d: %v / %v", width, i, err, sf.Err)
			}
			if len(sf.Fits) != len(want) || sf.Fits[0].Name != want[0].Name {
				t.Errorf("width %d sample %d: batch ranking diverged", width, i)
			}
		}
		if got[2].Err == nil {
			t.Errorf("width %d: unfittable sample must carry its error", width)
		}
	}
}

func relDiff(a, b float64) float64 {
	if a == b {
		return 0
	}
	return math.Abs(a-b) / math.Max(math.Abs(a), math.Abs(b))
}
