package dist

import (
	"fmt"
	"math"
	"math/rand"
	"strings"

	"repro/internal/sample"
)

// Mixture is a finite mixture of component distributions. The repair-time
// model uses a two-component mixture (quick reboot-style repairs plus a
// heavy hardware-replacement tail), matching the paper's observation that
// "some failures may simply require rebooting and certain other failures
// require replacing the hardware".
type Mixture struct {
	components []Distribution
	weights    []float64     // normalized
	picker     *sample.Alias // O(1) component choice, one variate per draw
}

// NewMixture builds a mixture of the given components with the given
// non-negative weights (normalized internally). Component and weight
// counts must match and at least one weight must be positive.
func NewMixture(components []Distribution, weights []float64) (*Mixture, error) {
	if len(components) == 0 {
		return nil, fmt.Errorf("dist: mixture needs at least one component")
	}
	if len(components) != len(weights) {
		return nil, fmt.Errorf("dist: mixture has %d components but %d weights", len(components), len(weights))
	}
	var total float64
	for i, w := range weights {
		if w < 0 || math.IsNaN(w) {
			return nil, fmt.Errorf("dist: mixture weight %d is invalid (%v)", i, w)
		}
		total += w
	}
	if total <= 0 {
		return nil, fmt.Errorf("dist: mixture weights sum to zero")
	}
	m := &Mixture{
		components: append([]Distribution(nil), components...),
		weights:    make([]float64, len(weights)),
	}
	for i, w := range weights {
		m.weights[i] = w / total
	}
	picker, err := sample.NewAlias(m.weights)
	if err != nil {
		return nil, fmt.Errorf("dist: building mixture sampler: %w", err)
	}
	m.picker = picker
	return m, nil
}

// Sample picks a component by weight and samples it. The component draw
// goes through an alias table built once in NewMixture — O(1) per draw
// instead of a cumulative-weight scan, still one uniform variate.
func (m *Mixture) Sample(rng *rand.Rand) float64 {
	return m.components[m.picker.Draw(rng)].Sample(rng)
}

// Mean returns the weighted mean of component means.
func (m *Mixture) Mean() float64 {
	var mean float64
	for i, c := range m.components {
		mean += m.weights[i] * c.Mean()
	}
	return mean
}

// Var returns the mixture variance via the law of total variance.
func (m *Mixture) Var() float64 {
	mean := m.Mean()
	var v float64
	for i, c := range m.components {
		d := c.Mean() - mean
		v += m.weights[i] * (c.Var() + d*d)
	}
	return v
}

// CDF returns the weighted component CDF.
func (m *Mixture) CDF(x float64) float64 {
	var f float64
	for i, c := range m.components {
		f += m.weights[i] * c.CDF(x)
	}
	return f
}

// Quantile inverts the mixture CDF by bisection.
func (m *Mixture) Quantile(p float64) float64 {
	if p < 0 || p > 1 || math.IsNaN(p) {
		return math.NaN()
	}
	if p == 1 {
		return math.Inf(1)
	}
	hi := m.Mean() + 20*math.Sqrt(m.Var())
	if math.IsNaN(hi) || hi <= 0 {
		hi = 1
	}
	return quantileBisect(m.CDF, p, 0, hi)
}

// String implements fmt.Stringer.
func (m *Mixture) String() string {
	parts := make([]string, len(m.components))
	for i, c := range m.components {
		parts[i] = fmt.Sprintf("%.3g*%s", m.weights[i], c)
	}
	return "Mixture(" + strings.Join(parts, " + ") + ")"
}
