package tsubame

import (
	"repro/internal/core"
	"repro/internal/report"
)

// RenderFullReport renders every table and figure of the paper, in paper
// order, from a cross-generation comparison.
func RenderFullReport(cmp *Comparison) string { return report.FullReport(cmp) }

// RenderTableI renders the node-configuration table.
func RenderTableI() string { return report.TableI() }

// RenderTableII renders the failure-category taxonomies.
func RenderTableII() string { return report.TableII() }

// RenderTableIII renders the multi-GPU involvement table.
func RenderTableIII(cmp *Comparison) string { return report.TableIII(cmp.Old, cmp.New) }

// RenderFigure renders one numbered figure (2-5, 7, 8, 10-12) for a single
// system's study; figures 6 and 9 compare systems, use RenderComparisonFigure.
func RenderFigure(n int, s *Study) string {
	switch n {
	case 2:
		return report.Fig2(s)
	case 3:
		return report.Fig3(s)
	case 4:
		return report.Fig4(s)
	case 5:
		return report.Fig5(s)
	case 7:
		return report.Fig7(s)
	case 8:
		return report.Fig8(s)
	case 10:
		return report.Fig10(s)
	case 11:
		return report.Fig11(s)
	case 12:
		return report.Fig12(s)
	default:
		return ""
	}
}

// RenderComparisonFigure renders one of the two-system figures (6 or 9).
func RenderComparisonFigure(n int, cmp *Comparison) string {
	switch n {
	case 6:
		return report.Fig6(cmp.Old, cmp.New)
	case 9:
		return report.Fig9(cmp.Old, cmp.New)
	default:
		return ""
	}
}

// RenderSummary renders the headline cross-generation comparison.
func RenderSummary(cmp *Comparison) string { return report.Summary(cmp) }

// RenderPEP renders the performance-error-proportionality table.
func RenderPEP(cmp *Comparison) string { return report.PEPTable(cmp) }

// RenderSpatial renders the rack/node failure-concentration extension.
func RenderSpatial(s *Study) string { return report.SpatialTable(s) }

// RenderSurvival renders the per-card Kaplan-Meier survival extension.
func RenderSurvival(cmp *Comparison) string { return report.SurvivalTable(cmp.Old, cmp.New) }

// RenderRollingMTBF renders a rolling-MTBF series.
func RenderRollingMTBF(title string, series []WindowMTBF) string {
	return report.RollingChart(title, series)
}

// RenderMarkdownReport renders the cross-generation study as a markdown
// document (tables only; plot-shaped figures become statistics tables).
func RenderMarkdownReport(cmp *Comparison) string { return report.MarkdownReport(cmp) }

// RenderDrift renders the cross-generation category-share drift table.
func RenderDrift(cmp *Comparison) string { return report.DriftTable(cmp) }

// RenderTTRSignificance renders the one-vs-rest recovery-time test table.
func RenderTTRSignificance(system string, rows []core.TTRSignificance) string {
	return report.SignificanceTable(system, rows)
}
