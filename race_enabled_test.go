//go:build race

package tsubame_test

// raceEnabled reports that this binary was built with -race, whose
// instrumented atomics make wall-clock bounds on the obs hot path
// meaningless.
const raceEnabled = true
