// Benchmark harness: one benchmark per table and figure of the paper plus
// the ablation experiments from DESIGN.md. Each benchmark regenerates its
// artifact from the calibrated synthetic logs and reports the headline
// numbers as benchmark metrics, so
//
//	go test -bench=. -benchmem
//
// reproduces the paper's rows/series and records paper-vs-measured values
// (collected into EXPERIMENTS.md).
package tsubame_test

import (
	"context"
	"runtime"
	"strings"
	"testing"
	"time"

	tsubame "repro"
	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/failures"
	"repro/internal/obs"
	"repro/internal/report"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/synth"
)

// benchSeed keeps every benchmark on the same deterministic dataset.
const benchSeed = 42

// benchLogs generates both logs once per benchmark.
func benchLogs(b *testing.B) (t2, t3 *tsubame.Log) {
	b.Helper()
	t2, t3, err := tsubame.GenerateBoth(benchSeed)
	if err != nil {
		b.Fatal(err)
	}
	return t2, t3
}

func benchStudies(b *testing.B) (*tsubame.Study, *tsubame.Study) {
	b.Helper()
	t2, t3 := benchLogs(b)
	s2, err := tsubame.Analyze(t2)
	if err != nil {
		b.Fatal(err)
	}
	s3, err := tsubame.Analyze(t3)
	if err != nil {
		b.Fatal(err)
	}
	return s2, s3
}

// BenchmarkTableI regenerates the node-configuration table.
func BenchmarkTableI(b *testing.B) {
	var out string
	for i := 0; i < b.N; i++ {
		out = report.TableI()
	}
	if len(out) == 0 {
		b.Fatal("empty table")
	}
}

// BenchmarkTableII regenerates the failure-category taxonomy table.
func BenchmarkTableII(b *testing.B) {
	var out string
	for i := 0; i < b.N; i++ {
		out = report.TableII()
	}
	if len(out) == 0 {
		b.Fatal("empty table")
	}
}

// BenchmarkFig2 regenerates the failure-category breakdowns. Paper: GPU
// 44.37% / CPU 1.78% on Tsubame-2; Software 50.59% / GPU 27.81% / CPU
// 3.25% on Tsubame-3.
func BenchmarkFig2(b *testing.B) {
	t2, t3 := benchLogs(b)
	b.ResetTimer()
	var shares2, shares3 []core.CategoryShare
	for i := 0; i < b.N; i++ {
		var err error
		if shares2, err = core.CategoryBreakdown(t2); err != nil {
			b.Fatal(err)
		}
		if shares3, err = core.CategoryBreakdown(t3); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(core.ShareOf(shares2, failures.CatGPU), "t2_gpu_pct")
	b.ReportMetric(core.ShareOf(shares2, failures.CatCPU), "t2_cpu_pct")
	b.ReportMetric(core.ShareOf(shares3, failures.CatSoftware), "t3_sw_pct")
	b.ReportMetric(core.ShareOf(shares3, failures.CatGPU), "t3_gpu_pct")
}

// BenchmarkFig3 regenerates the Tsubame-3 software root-locus breakdown.
// Paper: GPU-driver ~43%, unknown ~20% of 171 software failures.
func BenchmarkFig3(b *testing.B) {
	_, t3 := benchLogs(b)
	b.ResetTimer()
	var causes []core.CauseShare
	for i := 0; i < b.N; i++ {
		var err error
		if causes, err = core.SoftwareCauses(t3, 16); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(causes[0].Percent, "gpu_driver_pct")
	b.ReportMetric(causes[1].Percent, "unknown_pct")
}

// BenchmarkFig4 regenerates the failures-per-node distributions. Paper:
// ~60% single-failure nodes on Tsubame-2, ~60% multi-failure nodes on
// Tsubame-3, ~10% two-failure nodes on both.
func BenchmarkFig4(b *testing.B) {
	t2, t3 := benchLogs(b)
	b.ResetTimer()
	var bins2, bins3 []core.NodeCountBin
	for i := 0; i < b.N; i++ {
		var err error
		if bins2, err = core.NodeFailureCounts(t2); err != nil {
			b.Fatal(err)
		}
		if bins3, err = core.NodeFailureCounts(t3); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(core.PercentWithExactly(bins2, 1), "t2_one_failure_pct")
	b.ReportMetric(core.PercentWithExactly(bins2, 2), "t2_two_failure_pct")
	b.ReportMetric(core.PercentWithAtLeast(bins3, 2), "t3_multi_failure_pct")
}

// BenchmarkFig5 regenerates the GPU-slot distributions. Paper: slot 1
// ~20% above slots 0/2 on Tsubame-2; outer slots dominate on Tsubame-3.
func BenchmarkFig5(b *testing.B) {
	t2, t3 := benchLogs(b)
	b.ResetTimer()
	var slots2, slots3 []core.SlotShare
	for i := 0; i < b.N; i++ {
		var err error
		if slots2, err = core.GPUSlotDistribution(t2); err != nil {
			b.Fatal(err)
		}
		if slots3, err = core.GPUSlotDistribution(t3); err != nil {
			b.Fatal(err)
		}
	}
	outer := (slots2[0].Percent + slots2[2].Percent) / 2
	b.ReportMetric(slots2[1].Percent/outer, "t2_slot1_over_outer")
	b.ReportMetric(slots3[0].Percent+slots3[3].Percent, "t3_outer_pct")
}

// BenchmarkTableIII regenerates the multi-GPU involvement table. Paper:
// ~70% multi-GPU on Tsubame-2, <8% on Tsubame-3, zero 4-GPU failures.
func BenchmarkTableIII(b *testing.B) {
	t2, t3 := benchLogs(b)
	b.ResetTimer()
	var rows2, rows3 []core.InvolvementRow
	for i := 0; i < b.N; i++ {
		var err error
		if rows2, err = core.MultiGPUInvolvement(t2); err != nil {
			b.Fatal(err)
		}
		if rows3, err = core.MultiGPUInvolvement(t3); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(core.MultiGPUPercent(rows2), "t2_multi_gpu_pct")
	b.ReportMetric(core.MultiGPUPercent(rows3), "t3_multi_gpu_pct")
	b.ReportMetric(float64(rows3[3].Count), "t3_four_gpu_count")
}

// BenchmarkFig6 regenerates the TBF distributions. Paper: MTBF ~15 h vs
// >70 h; p75 of 20 h vs 93 h.
func BenchmarkFig6(b *testing.B) {
	t2, t3 := benchLogs(b)
	b.ResetTimer()
	var r2, r3 *core.TBFResult
	for i := 0; i < b.N; i++ {
		var err error
		if r2, err = core.TBFAnalysis(t2); err != nil {
			b.Fatal(err)
		}
		if r3, err = core.TBFAnalysis(t3); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(r2.MTBFHours, "t2_mtbf_h")
	b.ReportMetric(r3.MTBFHours, "t3_mtbf_h")
	b.ReportMetric(r2.P75, "t2_p75_h")
	b.ReportMetric(r3.P75, "t3_p75_h")
}

// BenchmarkFig7 regenerates the per-category TBF boxplots. Paper: GPU
// MTBF 21.94 h -> 226.48 h (~10x on card incidents), CPU 537.6 h ->
// 1593.6 h (~3x).
func BenchmarkFig7(b *testing.B) {
	t2, t3 := benchLogs(b)
	b.ResetTimer()
	var perType2, perType3 []core.CategoryDurations
	for i := 0; i < b.N; i++ {
		var err error
		if perType2, err = core.TBFByCategory(t2, 5); err != nil {
			b.Fatal(err)
		}
		if perType3, err = core.TBFByCategory(t3, 5); err != nil {
			b.Fatal(err)
		}
	}
	if len(perType2) == 0 || len(perType3) == 0 {
		b.Fatal("empty per-type TBF")
	}
	gpu2, _ := core.GPUCardIncidentMTBF(t2)
	gpu3, _ := core.GPUCardIncidentMTBF(t3)
	b.ReportMetric(gpu3/gpu2, "gpu_mtbf_improvement_x")
	cpu2, _ := core.CategoryMTBF(t2, failures.CatCPU)
	cpu3, _ := core.CategoryMTBF(t3, failures.CatCPU)
	b.ReportMetric(cpu3/cpu2, "cpu_mtbf_improvement_x")
}

// BenchmarkFig8 regenerates the multi-GPU temporal-clustering analysis.
// Paper: multi-GPU failures "often tend to happen close-by in time".
func BenchmarkFig8(b *testing.B) {
	t2, _ := benchLogs(b)
	b.ResetTimer()
	var res *core.MultiGPUTemporalResult
	for i := 0; i < b.N; i++ {
		var err error
		if res, err = core.MultiGPUTemporal(t2, 72); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.ClusteringScore, "clustering_score")
	b.ReportMetric(res.WithinWindowPercent, "within_72h_pct")
}

// BenchmarkFig9 regenerates the TTR distributions. Paper: MTTR ~55 h on
// both systems with very similar shapes.
func BenchmarkFig9(b *testing.B) {
	t2, t3 := benchLogs(b)
	b.ResetTimer()
	var r2, r3 *core.TTRResult
	for i := 0; i < b.N; i++ {
		var err error
		if r2, err = core.TTRAnalysis(t2); err != nil {
			b.Fatal(err)
		}
		if r3, err = core.TTRAnalysis(t3); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(r2.MTTRHours, "t2_mttr_h")
	b.ReportMetric(r3.MTTRHours, "t3_mttr_h")
	b.ReportMetric(r3.MTTRHours/r2.MTTRHours, "mttr_ratio")
}

// BenchmarkFig10 regenerates the per-category TTR boxplots. Paper:
// hardware repairs spread wider than software; SSD max ~290 h (T2),
// power-board ~230 h (T3).
func BenchmarkFig10(b *testing.B) {
	t2, t3 := benchLogs(b)
	b.ResetTimer()
	var perType2, perType3 []core.CategoryDurations
	for i := 0; i < b.N; i++ {
		var err error
		if perType2, err = core.TTRByCategory(t2, 2); err != nil {
			b.Fatal(err)
		}
		if perType3, err = core.TTRByCategory(t3, 2); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(maxOf(perType2, failures.CatSSD), "t2_ssd_max_h")
	b.ReportMetric(maxOf(perType3, failures.CatPowerBoard), "t3_powerboard_max_h")
	spread2, err := core.TTRSpread(t2)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(spread2.HardwareIQRHours/spread2.SoftwareIQRHours, "t2_hw_over_sw_iqr")
}

// BenchmarkFig11 regenerates the monthly TTR distributions. Paper:
// second-half elevation on Tsubame-2 only; no clean seasonal signal.
func BenchmarkFig11(b *testing.B) {
	t2, t3 := benchLogs(b)
	b.ResetTimer()
	var sc2, sc3 core.SeasonalCorrelation
	for i := 0; i < b.N; i++ {
		var err error
		if sc2, err = core.SeasonalAnalysis(t2); err != nil {
			b.Fatal(err)
		}
		if sc3, err = core.SeasonalAnalysis(t3); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(sc2.SecondHalfTTRRatio, "t2_second_half_ratio")
	b.ReportMetric(sc3.SecondHalfTTRRatio, "t3_second_half_ratio")
}

// BenchmarkFig12 regenerates the monthly failure counts. Paper: monthly
// density varies, and density does not predict recovery time.
func BenchmarkFig12(b *testing.B) {
	t2, _ := benchLogs(b)
	b.ResetTimer()
	var buckets []core.MonthBucket
	var sc core.SeasonalCorrelation
	for i := 0; i < b.N; i++ {
		var err error
		if buckets, err = core.MonthlySeasonality(t2); err != nil {
			b.Fatal(err)
		}
		if sc, err = core.SeasonalAnalysis(t2); err != nil {
			b.Fatal(err)
		}
	}
	if len(buckets) != 12 {
		b.Fatal("expected 12 months")
	}
	b.ReportMetric(sc.ChiSquareP, "uniformity_p")
	b.ReportMetric(sc.Spearman, "density_ttr_spearman")
}

// BenchmarkPerfErrorProportionality regenerates the paper's proposed
// metric: useful work per failure-free period grew faster than MTBF.
func BenchmarkPerfErrorProportionality(b *testing.B) {
	t2, t3 := benchLogs(b)
	b.ResetTimer()
	var cmp *core.Comparison
	for i := 0; i < b.N; i++ {
		var err error
		if cmp, err = core.Compare(t2, t3); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(cmp.MTBFImprovement, "mtbf_improvement_x")
	b.ReportMetric(cmp.PEPRatio, "pep_gain_x")
}

// --- Ablations (DESIGN.md A1-A5) ---

// BenchmarkAblationLoadBalance compares GPU-slot placement policies under
// Figure 5's non-uniform slot failure rates (RQ2 implication).
func BenchmarkAblationLoadBalance(b *testing.B) {
	// Moderate load (~0.8 of one slot) so the policies actually choose
	// different slots: packed concentrates on failure-prone slot 0 while
	// reliability-aware placement prefers the inner slots.
	cfg := sched.LoadBalanceConfig{
		SlotWeights:            []float64{1.5, 0.75, 0.75, 1.5},
		BaseRatePerHour:        0.002,
		UtilizationSensitivity: 0.8,
		JobHours:               24,
		ArrivalEveryHours:      30,
		HorizonHours:           200000,
		Seed:                   benchSeed,
	}
	var results []*sched.LoadBalanceResult
	for i := 0; i < b.N; i++ {
		var err error
		if results, err = sched.CompareLoadBalance(cfg); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(results[0].InterruptionRate, "packed_interrupt_rate")
	b.ReportMetric(results[1].InterruptionRate, "balanced_interrupt_rate")
	b.ReportMetric(results[2].InterruptionRate, "aware_interrupt_rate")
}

// BenchmarkAblationSpares compares spare-provisioning policies on fitted
// Tsubame-2 processes (RQ5 implication).
func BenchmarkAblationSpares(b *testing.B) {
	t2, _ := benchLogs(b)
	procs, err := sim.ProcessesFromLog(t2, 10)
	if err != nil {
		b.Fatal(err)
	}
	run := func(parts sim.PartsPolicy) *sim.Result {
		res, err := sim.Run(sim.Config{
			Nodes: 1408, GPUsPerNode: 3, HorizonHours: 8760, Processes: procs,
			Crews: 8, Parts: parts, Seed: 1,
		})
		if err != nil {
			b.Fatal(err)
		}
		return res
	}
	b.ResetTimer()
	var fixed, predictive *sim.Result
	for i := 0; i < b.N; i++ {
		fixedParts, err := tsubame.FixedSpares(1, 72)
		if err != nil {
			b.Fatal(err)
		}
		predParts, err := tsubame.PredictiveSpares(0.3, 72, 1.5)
		if err != nil {
			b.Fatal(err)
		}
		fixed = run(fixedParts)
		predictive = run(predParts)
	}
	b.ReportMetric(fixed.MeanRepairWait, "fixed_wait_h")
	b.ReportMetric(predictive.MeanRepairWait, "predictive_wait_h")
}

// BenchmarkAblationPrediction back-tests the temporal-locality predictor
// against the clustered multi-GPU failures (RQ5 implication: prediction-
// initiated proactive recovery).
func BenchmarkAblationPrediction(b *testing.B) {
	t2, _ := benchLogs(b)
	b.ResetTimer()
	var recall, lift float64
	for i := 0; i < b.N; i++ {
		ev, err := tsubame.EvaluateLocalityPredictor(t2, 72)
		if err != nil {
			b.Fatal(err)
		}
		recall, lift = ev.Recall(), ev.Lift()
	}
	b.ReportMetric(100*recall, "recall_pct")
	b.ReportMetric(lift, "lift_x")
}

// BenchmarkAblationCheckpoint sweeps checkpoint intervals in both MTBF
// regimes (cross-generation implication of RQ4).
func BenchmarkAblationCheckpoint(b *testing.B) {
	m2 := sched.CheckpointModel{CheckpointCostHours: 0.1, RestartCostHours: 0.2, MTBFHours: 15.3}
	m3 := sched.CheckpointModel{CheckpointCostHours: 0.1, RestartCostHours: 0.2, MTBFHours: 72.6}
	intervals := []float64{0.5, 1, 1.65, 2, 3.7, 6, 12}
	var best2, best3 float64
	for i := 0; i < b.N; i++ {
		var err error
		if best2, _, err = sched.IntervalSweep(m2, intervals); err != nil {
			b.Fatal(err)
		}
		if best3, _, err = sched.IntervalSweep(m3, intervals); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(best2, "t2_best_interval_h")
	b.ReportMetric(best3, "t3_best_interval_h")
}

// BenchmarkAblationClustering measures how temporal clustering of
// failures (Figure 8) changes checkpointed goodput versus a memoryless
// process with the same MTBF: the clustered stream is a hyperexponential
// burst/calm mixture (30% of gaps average 5 h, the rest stretch so the
// mean stays 72.6 h), giving the bursty inter-arrival pattern the
// multi-GPU analysis observed.
func BenchmarkAblationClustering(b *testing.B) {
	m := sched.CheckpointModel{CheckpointCostHours: 0.1, RestartCostHours: 0.2, MTBFHours: 72.6}
	tau := m.OptimalInterval()
	exp, err := tsubame.ExponentialDist(m.MTBFHours)
	if err != nil {
		b.Fatal(err)
	}
	clustered, err := tsubame.BurstyDist(m.MTBFHours, 0.3, 5)
	if err != nil {
		b.Fatal(err)
	}
	var effRenewal, effClustered float64
	for i := 0; i < b.N; i++ {
		if effRenewal, err = sched.SimulatedEfficiency(m, tau, exp, 200000, benchSeed); err != nil {
			b.Fatal(err)
		}
		if effClustered, err = sched.SimulatedEfficiency(m, tau, clustered, 200000, benchSeed); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(effRenewal, "renewal_efficiency")
	b.ReportMetric(effClustered, "clustered_efficiency")
}

// BenchmarkGenerate measures raw synthetic-log generation throughput.
func BenchmarkGenerate(b *testing.B) {
	p := synth.Tsubame2Profile()
	for i := 0; i < b.N; i++ {
		if _, err := synth.Generate(p, int64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFullStudy measures the full RQ1-RQ5 battery on one log.
func BenchmarkFullStudy(b *testing.B) {
	t2, _ := benchLogs(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tsubame.Analyze(t2); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Parallel analysis engine (internal/parallel substrate) ---
//
// Each BenchmarkParallel* below has a sequential counterpart; on a
// GOMAXPROCS >= 4 runner the parallel variant is expected to run >= 1.5x
// faster. Every variant reports its pool width so CI artifacts record
// the hardware the numbers came from.

// benchSeeds is the multi-seed/multi-trial work list of the fan-out
// benchmarks: enough independent units to saturate a typical CI runner.
var benchSeeds = []int64{42, 43, 44, 45, 46, 47, 48, 49}

// BenchmarkFullStudySequential is BenchmarkFullStudy under its explicit
// sequential name: the baseline of BenchmarkParallelFullStudy.
func BenchmarkFullStudySequential(b *testing.B) {
	t2, _ := benchLogs(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tsubame.AnalyzeParallel(t2, 1); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(1, "pool_width")
}

// BenchmarkParallelFullStudy fans the RQ1-RQ5 battery's independent
// analyses out across every core.
func BenchmarkParallelFullStudy(b *testing.B) {
	t2, _ := benchLogs(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tsubame.AnalyzeParallel(t2, 0); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(runtime.GOMAXPROCS(0)), "pool_width")
}

// BenchmarkGenerateSeedsSequential generates the multi-seed batch on one
// worker: the baseline of BenchmarkParallelGenerateSeeds.
func BenchmarkGenerateSeedsSequential(b *testing.B) {
	p := synth.Tsubame2Profile()
	for i := 0; i < b.N; i++ {
		if _, err := synth.GenerateMany(p, benchSeeds, 1); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(1, "pool_width")
}

// BenchmarkParallelGenerateSeeds generates the multi-seed batch across
// every core; generation is embarrassingly parallel, so this is the
// cleanest >= 1.5x demonstration on a multi-core runner.
func BenchmarkParallelGenerateSeeds(b *testing.B) {
	p := synth.Tsubame2Profile()
	for i := 0; i < b.N; i++ {
		if _, err := synth.GenerateMany(p, benchSeeds, 0); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(runtime.GOMAXPROCS(0)), "pool_width")
}

// benchTrialConfig builds the multi-trial simulation workload shared by
// the sequential and parallel trial benchmarks.
func benchTrialConfig(b *testing.B) tsubame.SimConfig {
	b.Helper()
	t2, _ := benchLogs(b)
	procs, err := sim.ProcessesFromLog(t2, 10)
	if err != nil {
		b.Fatal(err)
	}
	return tsubame.SimConfig{
		Nodes: 1408, GPUsPerNode: 3, HorizonHours: 4380,
		Processes: procs, Crews: 8,
	}
}

// BenchmarkSimTrialsSequential replays the trial batch on one worker:
// the baseline of BenchmarkParallelSimTrials.
func BenchmarkSimTrialsSequential(b *testing.B) {
	cfg := benchTrialConfig(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sim.RunTrials(context.Background(), cfg, benchSeeds, 1, nil); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(1, "pool_width")
}

// BenchmarkParallelSimTrials replays the independent trials across every
// core.
func BenchmarkParallelSimTrials(b *testing.B) {
	cfg := benchTrialConfig(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sim.RunTrials(context.Background(), cfg, benchSeeds, 0, nil); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(runtime.GOMAXPROCS(0)), "pool_width")
}

// BenchmarkRollingMTBFSequential scans fine-grained rolling windows
// (7-day step over the full Tsubame-2 span) on one worker: the baseline
// of BenchmarkParallelRollingMTBF.
func BenchmarkRollingMTBFSequential(b *testing.B) {
	t2, _ := benchLogs(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.RollingMTBFParallel(t2, 90, 7, 1); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(1, "pool_width")
}

// BenchmarkParallelRollingMTBF fans the independent window scans out
// across every core.
func BenchmarkParallelRollingMTBF(b *testing.B) {
	t2, _ := benchLogs(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.RollingMTBFParallel(t2, 90, 7, 0); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(runtime.GOMAXPROCS(0)), "pool_width")
}

func maxOf(rows []core.CategoryDurations, cat failures.Category) float64 {
	for _, r := range rows {
		if r.Category == cat {
			return r.Summary.Max
		}
	}
	return 0
}

// --- Extensions beyond the paper's figures ---

// BenchmarkExtRackConcentration measures the rack-level failure
// concentration extension (related-work observation of rack
// non-uniformity).
func BenchmarkExtRackConcentration(b *testing.B) {
	t2, _ := benchLogs(b)
	b.ResetTimer()
	var res *core.SpatialResult
	for i := 0; i < b.N; i++ {
		var err error
		if res, err = core.SpatialAnalysis(t2); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.RackGini, "rack_gini")
	b.ReportMetric(100*res.Top10PctRackShare, "top10pct_rack_share_pct")
}

// BenchmarkExtSurvival measures the per-card Kaplan-Meier extension (the
// card-lifetime view of the paper's reference [11]).
func BenchmarkExtSurvival(b *testing.B) {
	t2, t3 := benchLogs(b)
	b.ResetTimer()
	var s2, s3 *core.GPUSurvivalResult
	for i := 0; i < b.N; i++ {
		var err error
		if s2, err = core.GPUSurvival(t2); err != nil {
			b.Fatal(err)
		}
		if s3, err = core.GPUSurvival(t3); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(100*s2.SurvivalAtOneYear, "t2_year_survival_pct")
	b.ReportMetric(100*s3.SurvivalAtOneYear, "t3_year_survival_pct")
}

// BenchmarkExtRollingMTBF measures the rolling reliability series.
func BenchmarkExtRollingMTBF(b *testing.B) {
	t2, _ := benchLogs(b)
	b.ResetTimer()
	var trend float64
	for i := 0; i < b.N; i++ {
		series, err := core.RollingMTBF(t2, 90, 45)
		if err != nil {
			b.Fatal(err)
		}
		if trend, err = core.MTBFTrend(series); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(trend, "late_over_early_mtbf")
}

// BenchmarkAblationColocation measures how Table III's involvement
// distributions change the blast radius of co-locating single-GPU jobs on
// one node (RQ3 implication: scheduler design for co-location).
func BenchmarkAblationColocation(b *testing.B) {
	t2cfg := sched.ColocationConfig{
		GPUsPerNode:    3,
		InvolvementPMF: []float64{0.3044, 0.3478, 0.3478},
		JobsPerNode:    3,
		Trials:         100000,
		Seed:           benchSeed,
	}
	t3cfg := sched.ColocationConfig{
		GPUsPerNode:    4,
		InvolvementPMF: []float64{0.926, 0.0495, 0.0245, 0},
		JobsPerNode:    4,
		Trials:         100000,
		Seed:           benchSeed,
	}
	var r2, r3 *sched.ColocationResult
	for i := 0; i < b.N; i++ {
		var err error
		if r2, err = sched.SimulateColocation(t2cfg); err != nil {
			b.Fatal(err)
		}
		if r3, err = sched.SimulateColocation(t3cfg); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(r2.ColocatedKillsPerFailure, "t2_jobs_killed_per_failure")
	b.ReportMetric(r3.ColocatedKillsPerFailure, "t3_jobs_killed_per_failure")
}

// BenchmarkAblationProactiveRecovery measures prediction-initiated repair
// discounts on bursty fitted Tsubame-2 processes (RQ5: "initiate recovery
// proactively").
func BenchmarkAblationProactiveRecovery(b *testing.B) {
	t2, _ := benchLogs(b)
	procs, err := sim.ProcessesFromLog(t2, 10)
	if err != nil {
		b.Fatal(err)
	}
	base := sim.Config{Nodes: 1408, GPUsPerNode: 3, HorizonHours: 8760, Processes: procs, Seed: 1}
	proactive := base
	proactive.Proactive = &sim.ProactiveRecovery{WindowHours: 24, Factor: 0.5}
	var plain, alarmed *sim.Result
	for i := 0; i < b.N; i++ {
		if plain, err = sim.Run(base); err != nil {
			b.Fatal(err)
		}
		if alarmed, err = sim.Run(proactive); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(plain.NodeHoursLost, "plain_node_hours_lost")
	b.ReportMetric(alarmed.NodeHoursLost, "proactive_node_hours_lost")
	b.ReportMetric(float64(alarmed.DiscountedRepairs), "discounted_repairs")
}

// BenchmarkAblationCostCurve sweeps spare-stock levels against downtime
// and holding prices (RQ5: "maintaining balance is the key").
func BenchmarkAblationCostCurve(b *testing.B) {
	t2, _ := benchLogs(b)
	procs, err := sim.ProcessesFromLog(t2, 10)
	if err != nil {
		b.Fatal(err)
	}
	cfg := cost.SweepConfig{
		Nodes:         1408,
		GPUsPerNode:   3,
		Processes:     procs,
		HorizonHours:  8760,
		Seed:          1,
		LeadTimeHours: 120,
		Stocks:        []int{0, 1, 2, 4, 8, 16, 32},
		Prices:        cost.Prices{DowntimePerNodeHour: 100, HoldingPerPartYear: 5000},
	}
	var points []cost.Point
	var optimal int
	for i := 0; i < b.N; i++ {
		if points, optimal, err = cost.Sweep(cfg); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(points[optimal].Stock), "optimal_stock")
	b.ReportMetric(points[optimal].Total, "optimal_total_cost")
	b.ReportMetric(points[0].Total, "zero_stock_total_cost")
}

// --- Observability layer (internal/obs) ---

// BenchmarkFullStudyObserved runs the full RQ1-RQ5 battery with metric
// collection enabled and reports every named phase span as a benchmark
// metric (mean seconds per iteration, metric name = span name with "/"
// flattened to "_"). This is the per-phase timing breakdown the run
// manifests record, surfaced through the benchmark pipeline.
func BenchmarkFullStudyObserved(b *testing.B) {
	t2, _ := benchLogs(b)
	was := obs.Enable(true)
	defer obs.Enable(was)
	obs.Reset()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tsubame.AnalyzeParallel(t2, 0); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	for _, s := range obs.Take().Spans {
		metric := strings.ReplaceAll(s.Name, "/", "_") + "_s"
		b.ReportMetric(s.WallSeconds/float64(b.N), metric)
	}
	b.ReportMetric(float64(runtime.GOMAXPROCS(0)), "pool_width")
}

// BenchmarkObsSpanDisabled and BenchmarkObsSpanEnabled are the paired
// overhead benchmarks for one instrumented call site. Disabled is the
// production default: a span must cost a single atomic load (~1 ns), so
// instrumenting every analysis phase adds well under 2% to any phase
// that does real work.
func BenchmarkObsSpanDisabled(b *testing.B) {
	was := obs.Enable(false)
	defer obs.Enable(was)
	for i := 0; i < b.N; i++ {
		obs.StartSpan("bench/span").End()
	}
}

func BenchmarkObsSpanEnabled(b *testing.B) {
	was := obs.Enable(true)
	defer func() {
		obs.Enable(was)
		obs.Reset()
	}()
	for i := 0; i < b.N; i++ {
		obs.StartSpan("bench/span").End()
	}
}

// BenchmarkObsCounterDisabled/Enabled: same pairing for counters, the
// other hot-path primitive.
func BenchmarkObsCounterDisabled(b *testing.B) {
	was := obs.Enable(false)
	defer obs.Enable(was)
	for i := 0; i < b.N; i++ {
		obs.Add("bench/counter", 1)
	}
}

func BenchmarkObsCounterEnabled(b *testing.B) {
	was := obs.Enable(true)
	defer func() {
		obs.Enable(was)
		obs.Reset()
	}()
	for i := 0; i < b.N; i++ {
		obs.Add("bench/counter", 1)
	}
}

// BenchmarkFullStudyInstrumentedDisabled pairs with
// BenchmarkFullStudySequential at the whole-study level: identical work,
// collection explicitly off, so any gap between the two is the total
// disabled-mode cost of every span and counter in the analysis path. The
// acceptance bar is <2%.
func BenchmarkFullStudyInstrumentedDisabled(b *testing.B) {
	t2, _ := benchLogs(b)
	was := obs.Enable(false)
	defer obs.Enable(was)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tsubame.AnalyzeParallel(t2, 1); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(1, "pool_width")
}

// TestObsDisabledOverhead is the executable form of the <2% criterion on
// the hot primitive itself: with collection disabled, one million
// span+counter pairs must complete in far less time than even a 1%
// slice of the cheapest analysis phase. The generous wall bound (50 ms
// for 2M atomic loads, ~25 ns each) keeps the check meaningful without
// being flaky on loaded CI runners.
func TestObsDisabledOverhead(t *testing.T) {
	if raceEnabled {
		t.Skip("race-instrumented atomics invalidate the wall-clock bound")
	}
	was := obs.Enable(false)
	defer obs.Enable(was)
	start := time.Now()
	for i := 0; i < 1_000_000; i++ {
		obs.StartSpan("overhead/span").End()
		obs.Add("overhead/counter", 1)
	}
	if elapsed := time.Since(start); elapsed > 50*time.Millisecond {
		t.Errorf("2M disabled-mode obs calls took %v, want < 50ms", elapsed)
	}
	if _, ok := obs.Take().SpanByName("overhead/span"); ok {
		t.Error("disabled-mode calls must not record spans")
	}
}

// BenchmarkExtWorkloadAttribution tests the paper's scope note that no
// application exceeds its proportional failure share.
func BenchmarkExtWorkloadAttribution(b *testing.B) {
	t2, _ := benchLogs(b)
	capacity, err := tsubame.WorkloadCapacity(t2, 1408, 0.8)
	if err != nil {
		b.Fatal(err)
	}
	trace, err := tsubame.GenerateWorkloadTrace(30, capacity, 1.0, benchSeed)
	if err != nil {
		b.Fatal(err)
	}
	var att *tsubame.WorkloadAttribution
	for i := 0; i < b.N; i++ {
		if att, err = tsubame.AttributeFailures(t2, trace, nil, benchSeed); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(att.P, "proportionality_p")
	b.ReportMetric(att.MaxExcessRatio, "max_excess_ratio")
}
