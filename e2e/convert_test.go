// Black-box tests of the columnar data plane: tsubame-convert's lossless
// round trip, the streaming .tsbc digest's byte parity with the batch
// path, and the exit-2 contract on unrecognizable input. TestConvertSmoke
// is the CI convert-smoke gate (make convert-smoke).
package e2e

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	tsubame "repro"
)

// TestTSBCPipeline drives the README's two-step workflow through the
// columnar format: generate straight to .tsbc, then require the digest
// and the analysis battery to match the CSV path byte for byte.
func TestTSBCPipeline(t *testing.T) {
	dir := t.TempDir()
	tsbc := filepath.Join(dir, "t3.tsbc")
	csv := filepath.Join(dir, "t3.csv")
	for _, out := range []string{tsbc, csv} {
		if _, stderr, code := run(t, "tsubame-gen", "-system", "t3", "-seed", "7", "-out", out); code != 0 {
			t.Fatalf("gen %s exited %d: %s", out, code, stderr)
		}
	}

	batch, stderr, code := run(t, "tsubame-digest", "-in", csv, "-days", "30", "-quantiles")
	if code != 0 {
		t.Fatalf("batch digest exited %d: %s", code, stderr)
	}
	stream, stderr, code := run(t, "tsubame-digest", "-in", tsbc, "-days", "30", "-quantiles")
	if code != 0 {
		t.Fatalf("streaming digest exited %d: %s", code, stderr)
	}
	if stream != batch {
		t.Fatalf("streaming .tsbc digest diverged from batch CSV digest\nfirst divergence: %s",
			firstDiff(batch, stream))
	}
	if !strings.Contains(stream, "Recovery quantiles:") {
		t.Fatalf("-quantiles digest is missing the quantile line:\n%s", stream)
	}

	analyzeTSBC, stderr, code := run(t, "tsubame-analyze", "-in", tsbc, "-parallel", "1")
	if code != 0 {
		t.Fatalf("analyze .tsbc exited %d: %s", code, stderr)
	}
	analyzeCSV, stderr, code := run(t, "tsubame-analyze", "-in", csv, "-parallel", "1")
	if code != 0 {
		t.Fatalf("analyze csv exited %d: %s", code, stderr)
	}
	if analyzeTSBC != analyzeCSV {
		t.Fatalf("analyze over .tsbc diverged from csv\nfirst divergence: %s",
			firstDiff(analyzeCSV, analyzeTSBC))
	}
}

// TestConvertRoundTrip pins losslessness on the committed seed-42 trace:
// NDJSON -> .tsbc -> NDJSON must reproduce the input byte for byte, and
// the format override (-format against a mismatched extension) must win.
func TestConvertRoundTrip(t *testing.T) {
	dir := t.TempDir()
	tsbc := filepath.Join(dir, "trace.tsbc")
	back := filepath.Join(dir, "back.ndjson")
	if _, stderr, code := run(t, "tsubame-convert", "-in", "testdata/t2-seed42.ndjson", "-out", tsbc); code != 0 {
		t.Fatalf("convert to tsbc exited %d: %s", code, stderr)
	}
	if _, stderr, code := run(t, "tsubame-convert", "-in", tsbc, "-out", back); code != 0 {
		t.Fatalf("convert back exited %d: %s", code, stderr)
	}
	orig, err := os.ReadFile("testdata/t2-seed42.ndjson")
	if err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(back)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(orig, got) {
		t.Fatalf("NDJSON -> tsbc -> NDJSON round trip is not byte-identical\nfirst divergence: %s",
			firstDiff(string(orig), string(got)))
	}

	// -format overrides the output extension.
	odd := filepath.Join(dir, "odd.csv")
	if _, stderr, code := run(t, "tsubame-convert", "-in", tsbc, "-out", odd, "-format", "ndjson"); code != 0 {
		t.Fatalf("convert with -format override exited %d: %s", code, stderr)
	}
	overridden, err := os.ReadFile(odd)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(orig, overridden) {
		t.Fatal("-format ndjson into a .csv path did not produce NDJSON")
	}
}

// TestUnrecognizableInputExitTwo pins the sniffing contract: input that
// is none of csv/ndjson/tsbc is a usage error (exit 2), distinct from
// the exit-1 I/O and parse failures.
func TestUnrecognizableInputExitTwo(t *testing.T) {
	junk := filepath.Join(t.TempDir(), "junk.bin")
	if err := os.WriteFile(junk, []byte("neither a header row nor json nor magic\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	for _, c := range []struct {
		tool string
		args []string
	}{
		{"tsubame-analyze", []string{"-in", junk}},
		{"tsubame-digest", []string{"-in", junk}},
		{"tsubame-convert", []string{"-in", junk, "-format", "csv"}},
	} {
		stdout, stderr, code := run(t, c.tool, c.args...)
		if code != 2 {
			t.Errorf("%s on unrecognizable input exited %d, want 2\nstdout: %s\nstderr: %s",
				c.tool, code, stdout, stderr)
		}
		if !strings.Contains(stderr, "unrecognizable input format") {
			t.Errorf("%s stderr does not name the problem:\n%s", c.tool, stderr)
		}
	}
}

// convertSmokeScale multiplies the Tsubame-3 profile's exact counts to
// the 100k-record trace the convert-smoke gate runs on (338 x 296 =
// 100,048 records, the same sizing as the tier-1 perf benchmarks).
const convertSmokeScale = 296

// TestConvertSmoke is the blocking convert-smoke CI gate: a 100k-record
// trace through NDJSON -> .tsbc -> NDJSON must be byte-identical, and
// the streaming .tsbc digest must match the batch digest byte for byte.
// With CONVERT_SMOKE_DIR set, intermediates are written there and kept,
// so a failing CI run uploads them as the diff artifact.
func TestConvertSmoke(t *testing.T) {
	dir := os.Getenv("CONVERT_SMOKE_DIR")
	if dir == "" {
		dir = t.TempDir()
	} else if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}

	// The scaled profile is built with the library facade: the CLI's
	// -profile flag is the supported path for operator-scale traces.
	p := tsubame.Tsubame3Profile()
	for i := range p.Categories {
		p.Categories[i].Count *= convertSmokeScale
	}
	for i := range p.SoftwareCauses {
		p.SoftwareCauses[i].Count *= convertSmokeScale
	}
	p.NodeCount *= convertSmokeScale
	p.SoftwareOnMultiNodes *= convertSmokeScale
	profilePath := filepath.Join(dir, "profile.json")
	pf, err := os.Create(profilePath)
	if err != nil {
		t.Fatal(err)
	}
	if err := tsubame.WriteProfile(pf, p); err != nil {
		t.Fatal(err)
	}
	if err := pf.Close(); err != nil {
		t.Fatal(err)
	}

	ndjson := filepath.Join(dir, "big.ndjson")
	tsbc := filepath.Join(dir, "big.tsbc")
	back := filepath.Join(dir, "back.ndjson")
	csv := filepath.Join(dir, "big.csv")
	if _, stderr, code := run(t, "tsubame-gen", "-profile", profilePath, "-seed", "42", "-format", "ndjson", "-out", ndjson); code != 0 {
		t.Fatalf("gen exited %d: %s", code, stderr)
	}
	if _, stderr, code := run(t, "tsubame-convert", "-in", ndjson, "-out", tsbc); code != 0 {
		t.Fatalf("convert to tsbc exited %d: %s", code, stderr)
	}
	if _, stderr, code := run(t, "tsubame-convert", "-in", tsbc, "-out", back); code != 0 {
		t.Fatalf("convert back exited %d: %s", code, stderr)
	}
	orig, err := os.ReadFile(ndjson)
	if err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(back)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(orig, got) {
		t.Fatalf("100k-record NDJSON -> tsbc -> NDJSON round trip is not byte-identical (intermediates in %s)\nfirst divergence: %s",
			dir, firstDiff(string(orig), string(got)))
	}
	tsbcInfo, err := os.Stat(tsbc)
	if err != nil {
		t.Fatal(err)
	}
	if tsbcInfo.Size() >= int64(len(orig)) {
		t.Errorf("tsbc (%d bytes) is not smaller than NDJSON (%d bytes)", tsbcInfo.Size(), len(orig))
	}

	if _, stderr, code := run(t, "tsubame-convert", "-in", ndjson, "-out", csv); code != 0 {
		t.Fatalf("convert to csv exited %d: %s", code, stderr)
	}
	batch, stderr, code := run(t, "tsubame-digest", "-in", csv, "-days", "30", "-quantiles")
	if code != 0 {
		t.Fatalf("batch digest exited %d: %s", code, stderr)
	}
	stream, stderr, code := run(t, "tsubame-digest", "-in", tsbc, "-days", "30", "-quantiles")
	if code != 0 {
		t.Fatalf("streaming digest exited %d: %s", code, stderr)
	}
	if stream != batch {
		streamPath := filepath.Join(dir, "digest_stream.txt")
		batchPath := filepath.Join(dir, "digest_batch.txt")
		os.WriteFile(streamPath, []byte(stream), 0o644)
		os.WriteFile(batchPath, []byte(batch), 0o644)
		t.Fatalf("streaming digest diverged from batch digest (outputs in %s)\nfirst divergence: %s",
			dir, firstDiff(batch, stream))
	}
}
