package e2e

import (
	"bufio"
	"bytes"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"
)

// startServe boots the tsubame-serve binary on an ephemeral port and
// returns its base URL plus a stop function that SIGINTs the process and
// asserts a clean exit. Readiness is the listening line the server
// prints to stdout once it accepts connections.
func startServe(t *testing.T, args ...string) (baseURL string, stop func()) {
	t.Helper()
	cmd := exec.Command(bin("tsubame-serve"), append([]string{"-addr", "127.0.0.1:0"}, args...)...)
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	ready := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stdout)
		for sc.Scan() {
			if _, url, ok := strings.Cut(sc.Text(), "listening on "); ok {
				ready <- url
				break
			}
		}
		io.Copy(io.Discard, stdout)
	}()
	select {
	case baseURL = <-ready:
	case <-time.After(30 * time.Second):
		cmd.Process.Kill()
		t.Fatalf("server never printed its listening line\nstderr: %s", stderr.String())
	}
	stopped := false
	stop = func() {
		if stopped {
			return
		}
		stopped = true
		if err := cmd.Process.Signal(syscall.SIGINT); err != nil {
			t.Fatalf("signalling server: %v", err)
		}
		if err := cmd.Wait(); err != nil {
			t.Fatalf("server did not exit cleanly: %v\nstderr: %s", err, stderr.String())
		}
	}
	t.Cleanup(stop)
	return baseURL, stop
}

func httpGet(t *testing.T, url string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, body
}

func httpPost(t *testing.T, url string, body []byte) (int, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/x-ndjson", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	respBody, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, respBody
}

// TestServeCLI is the serve smoke: boot the server, stream the committed
// seed-42 NDJSON trace in two chunks, query between the chunks, and pin
// the fully-ingested analyze and digest responses to the same goldens
// that gate the batch CLIs — the streamed service and the one-shot tools
// must be byte-identical views of the same records.
func TestServeCLI(t *testing.T) {
	trace, err := os.ReadFile(filepath.Join("testdata", "t2-seed42.ndjson"))
	if err != nil {
		t.Fatal(err)
	}
	lines := bytes.SplitAfter(trace, []byte("\n"))
	first, second := bytes.Join(lines[:450], nil), bytes.Join(lines[450:], nil)

	baseURL, stop := startServe(t, "-system", "t2", "-parallel", "1")

	status, body := httpPost(t, baseURL+"/v1/ingest", first)
	if status != http.StatusOK {
		t.Fatalf("first ingest: status %d: %s", status, body)
	}
	// Mid-stream queries serve the prefix snapshot.
	status, body = httpGet(t, baseURL+"/v1/analyze")
	if status != http.StatusOK || !bytes.Contains(body, []byte("Analyzed 450 failures")) {
		t.Fatalf("mid-stream analyze: status %d\n%s", status, body)
	}
	if status, body = httpGet(t, baseURL+"/v1/digest"); status != http.StatusOK {
		t.Fatalf("mid-stream digest: status %d: %s", status, body)
	}

	status, body = httpPost(t, baseURL+"/v1/ingest", second)
	if status != http.StatusOK {
		t.Fatalf("second ingest: status %d: %s", status, body)
	}

	goldens := []struct {
		path, golden string
	}{
		{"/v1/analyze", "analyze.golden"},
		{"/v1/digest?days=30", "digest.golden"},
	}
	for _, g := range goldens {
		status, got := httpGet(t, baseURL+g.path)
		if status != http.StatusOK {
			t.Fatalf("%s: status %d: %s", g.path, status, got)
		}
		want, err := os.ReadFile(filepath.Join("testdata", g.golden))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Errorf("%s diverged from %s\nfirst divergence: %s",
				g.path, g.golden, firstDiff(string(want), string(got)))
		}
	}

	// Resource limits answer with a clear 413.
	status, body = httpPost(t, baseURL+"/v1/ingest",
		append(bytes.Join(lines[:2], nil), bytes.Repeat([]byte("x"), 2<<20)...))
	if status != http.StatusRequestEntityTooLarge || !bytes.Contains(body, []byte("line limit")) {
		t.Fatalf("oversized line: status %d: %s", status, body)
	}

	stop() // SIGINT must drain and exit 0 (asserted inside stop)
}

// TestServeCLISteadyIngest streams the committed trace as many small
// batches — the steady-state live-monitoring shape the merge-based
// append exists for — with digest queries interleaved so epochs are
// materialized (and their facets delta-maintained) mid-stream, then
// pins the fully-ingested analyze and digest responses to the same
// goldens as the two-chunk smoke: however the stream is split, the
// final epoch is byte-identical.
func TestServeCLISteadyIngest(t *testing.T) {
	trace, err := os.ReadFile(filepath.Join("testdata", "t2-seed42.ndjson"))
	if err != nil {
		t.Fatal(err)
	}
	lines := bytes.SplitAfter(trace, []byte("\n"))

	baseURL, _ := startServe(t, "-system", "t2", "-parallel", "1")

	const batch = 30
	batches := 0
	for at := 0; at < len(lines); at += batch {
		end := at + batch
		if end > len(lines) {
			end = len(lines)
		}
		body := bytes.Join(lines[at:end], nil)
		if len(bytes.TrimSpace(body)) == 0 {
			continue
		}
		status, resp := httpPost(t, baseURL+"/v1/ingest", body)
		if status != http.StatusOK {
			t.Fatalf("ingest at line %d: status %d: %s", at, status, resp)
		}
		batches++
		if batches%5 == 0 {
			if status, resp := httpGet(t, baseURL+"/v1/digest?days=30"); status != http.StatusOK {
				t.Fatalf("mid-stream digest after batch %d: status %d: %s", batches, status, resp)
			}
		}
	}
	if batches < 20 {
		t.Fatalf("trace split into only %d batches; steady-state shape not exercised", batches)
	}

	goldens := []struct {
		path, golden string
	}{
		{"/v1/analyze", "analyze.golden"},
		{"/v1/digest?days=30", "digest.golden"},
	}
	for _, g := range goldens {
		status, got := httpGet(t, baseURL+g.path)
		if status != http.StatusOK {
			t.Fatalf("%s: status %d: %s", g.path, status, got)
		}
		want, err := os.ReadFile(filepath.Join("testdata", g.golden))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Errorf("%s diverged from %s after %d-batch ingest\nfirst divergence: %s",
				g.path, g.golden, batches, firstDiff(string(want), string(got)))
		}
	}
}

// TestServeCLIRetentionFlags boots with the retention flags and checks
// eviction is reported on ingest and reflected by /v1/status: the
// resident log is capped at -max-records while the server keeps
// answering.
func TestServeCLIRetentionFlags(t *testing.T) {
	trace, err := os.ReadFile(filepath.Join("testdata", "t2-seed42.ndjson"))
	if err != nil {
		t.Fatal(err)
	}
	baseURL, _ := startServe(t, "-system", "t2", "-max-records", "500", "-max-age", "87600h")
	status, body := httpPost(t, baseURL+"/v1/ingest", trace)
	if status != http.StatusOK {
		t.Fatalf("ingest: status %d: %s", status, body)
	}
	if !bytes.Contains(body, []byte(`"evicted":397`)) {
		t.Fatalf("ingest response does not report 397 evicted records: %s", body)
	}
	status, body = httpGet(t, baseURL+"/v1/status")
	if status != http.StatusOK || !bytes.Contains(body, []byte(`"records":500`)) {
		t.Fatalf("status after capped ingest: %d: %s", status, body)
	}
}

// TestServeCLIBodyLimit boots with a tiny -max-body and pins the 413.
func TestServeCLIBodyLimit(t *testing.T) {
	trace, err := os.ReadFile(filepath.Join("testdata", "t2-seed42.ndjson"))
	if err != nil {
		t.Fatal(err)
	}
	baseURL, _ := startServe(t, "-max-body", "4096")
	status, body := httpPost(t, baseURL+"/v1/ingest", trace)
	if status != http.StatusRequestEntityTooLarge || !bytes.Contains(body, []byte("ingest limit")) {
		t.Fatalf("oversized body: status %d: %s", status, body)
	}
	// The rejected batch must not have committed anything.
	status, body = httpGet(t, baseURL+"/v1/status")
	if status != http.StatusOK || !bytes.Contains(body, []byte(`"records":0`)) {
		t.Fatalf("status after rejected ingest: %d: %s", status, body)
	}
}

// TestServeCLIManifest exercises the -manifest flag: after a clean
// shutdown the run manifest records the ingested record count.
func TestServeCLIManifest(t *testing.T) {
	trace, err := os.ReadFile(filepath.Join("testdata", "t2-seed42.ndjson"))
	if err != nil {
		t.Fatal(err)
	}
	manifest := filepath.Join(t.TempDir(), "run.json")
	baseURL, stop := startServe(t, "-manifest", manifest)
	if status, body := httpPost(t, baseURL+"/v1/ingest", trace); status != http.StatusOK {
		t.Fatalf("ingest: status %d: %s", status, body)
	}
	stop()
	data, err := os.ReadFile(manifest)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(data, []byte(`"records": 897`)) && !bytes.Contains(data, []byte(`"records":897`)) {
		t.Fatalf("manifest does not record 897 ingested records:\n%s", data)
	}
}
