// Package e2e black-box tests the command-line tools: every binary is
// compiled once per test run, then driven through os/exec the way a user
// would drive it — golden stdout on committed traces for the analysis
// tools, exit-code and usage contracts on bad flags, and a real
// conformance run. Regenerate goldens with:
//
//	go test ./e2e -run TestGolden -update
package e2e

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files from current output")

// tools is every command under cmd/, compiled once by TestMain.
var tools = []string{
	"tsubame-analyze",
	"tsubame-anonymize",
	"tsubame-benchcheck",
	"tsubame-conform",
	"tsubame-convert",
	"tsubame-diff",
	"tsubame-digest",
	"tsubame-fit",
	"tsubame-gen",
	"tsubame-remediate",
	"tsubame-report",
	"tsubame-serve",
	"tsubame-sim",
	"tsubame-sweep",
}

var binDir string

func TestMain(m *testing.M) {
	flag.Parse()
	dir, err := os.MkdirTemp("", "tsubame-e2e-*")
	if err != nil {
		fmt.Fprintln(os.Stderr, "e2e:", err)
		os.Exit(1)
	}
	binDir = dir
	// One `go build` invocation compiles the whole tool suite; per-binary
	// builds would redo shared-package work ten times.
	args := append([]string{"build", "-o", binDir + string(os.PathSeparator)}, packages()...)
	build := exec.Command("go", args...)
	build.Stderr = os.Stderr
	if err := build.Run(); err != nil {
		fmt.Fprintln(os.Stderr, "e2e: building tools:", err)
		os.RemoveAll(binDir)
		os.Exit(1)
	}
	code := m.Run()
	os.RemoveAll(binDir)
	os.Exit(code)
}

func packages() []string {
	pkgs := make([]string, len(tools))
	for i, t := range tools {
		pkgs[i] = "repro/cmd/" + t
	}
	return pkgs
}

func bin(tool string) string { return filepath.Join(binDir, tool) }

// run executes a tool and returns stdout, stderr, and the exit code.
func run(t *testing.T, tool string, args ...string) (stdout, stderr string, code int) {
	t.Helper()
	cmd := exec.Command(bin(tool), args...)
	var out, errBuf bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &errBuf
	err := cmd.Run()
	code = 0
	if err != nil {
		exitErr, ok := err.(*exec.ExitError)
		if !ok {
			t.Fatalf("%s %s: %v", tool, strings.Join(args, " "), err)
		}
		code = exitErr.ExitCode()
	}
	return out.String(), errBuf.String(), code
}

// TestGoldenOutputs pins the full stdout of the reporting tools on the
// committed seed-42 Tsubame-2 trace. The generators are pure functions of
// (profile, seed), so these goldens are stable across machines; a diff
// means the analysis or rendering pipeline changed behavior.
func TestGoldenOutputs(t *testing.T) {
	cases := []struct {
		name string
		tool string
		args []string
	}{
		{"analyze", "tsubame-analyze", []string{"-in", "testdata/t2-seed42.csv", "-parallel", "1"}},
		{"report", "tsubame-report", []string{"-seed", "42"}},
		{"digest", "tsubame-digest", []string{"-in", "testdata/t2-seed42.csv", "-days", "30"}},
		{"diff", "tsubame-diff", []string{"-before", "testdata/t2-before.csv", "-after", "testdata/t2-after.csv"}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			stdout, stderr, code := run(t, c.tool, c.args...)
			if code != 0 {
				t.Fatalf("%s exited %d\nstderr: %s", c.tool, code, stderr)
			}
			golden := filepath.Join("testdata", c.name+".golden")
			if *update {
				if err := os.WriteFile(golden, []byte(stdout), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(golden)
			if err != nil {
				t.Fatalf("missing golden (run with -update): %v", err)
			}
			if stdout != string(want) {
				t.Fatalf("%s output diverged from %s (regenerate with -update if intended)\n got %d bytes, want %d bytes\nfirst divergence: %s",
					c.tool, golden, len(stdout), len(want), firstDiff(string(want), stdout))
			}
		})
	}
}

// firstDiff locates the first differing line for a readable failure.
func firstDiff(want, got string) string {
	wl, gl := strings.Split(want, "\n"), strings.Split(got, "\n")
	for i := 0; i < len(wl) && i < len(gl); i++ {
		if wl[i] != gl[i] {
			return fmt.Sprintf("line %d:\n want %q\n  got %q", i+1, wl[i], gl[i])
		}
	}
	return fmt.Sprintf("line counts differ: want %d, got %d", len(wl), len(gl))
}

// TestBadFlagsExitTwo pins the usage contract of every tool: invalid
// flag values exit with status 2 (the conventional usage-error code) and
// print usage to stderr.
func TestBadFlagsExitTwo(t *testing.T) {
	cases := []struct {
		tool string
		args []string
	}{
		{"tsubame-analyze", []string{"-parallel", "-1"}},
		{"tsubame-anonymize", []string{"-in", "testdata/t2-seed42.csv"}}, // missing -key
		{"tsubame-benchcheck", nil},                                      // missing subcommand
		{"tsubame-conform", []string{"-seeds", "0"}},
		{"tsubame-convert", []string{"-in", "testdata/t2-seed42.csv"}}, // stdout needs -format
		{"tsubame-diff", []string{"-alpha", "2"}},
		{"tsubame-digest", []string{"-days", "0"}},
		{"tsubame-fit", []string{"-min", "0"}},
		{"tsubame-gen", []string{"-runs", "0"}},
		{"tsubame-remediate", []string{"-policies", "paint"}}, // unknown policy
		{"tsubame-report", []string{"-bogus"}},                // unknown flag
		{"tsubame-serve", []string{"-max-body", "0"}},
		{"tsubame-sim", []string{"-trials", "0"}},
		{"tsubame-sweep", []string{"-seeds", "0"}}, // also missing -out
	}
	for _, c := range cases {
		t.Run(c.tool, func(t *testing.T) {
			stdout, stderr, code := run(t, c.tool, c.args...)
			if code != 2 {
				t.Fatalf("%s %s exited %d, want 2\nstdout: %s\nstderr: %s",
					c.tool, strings.Join(c.args, " "), code, stdout, stderr)
			}
			if !strings.Contains(strings.ToLower(stderr), "usage") {
				t.Fatalf("%s did not print usage on bad flags:\n%s", c.tool, stderr)
			}
		})
	}
}

// TestConformCLI runs a real conformance evaluation through the binary
// at the canonical 32-seed configuration (the tolerance bands are tuned
// for it): the shipped calibration must pass and produce a JSON report.
func TestConformCLI(t *testing.T) {
	outPath := filepath.Join(t.TempDir(), "report.json")
	stdout, stderr, code := run(t, "tsubame-conform", "-system", "t2", "-out", outPath)
	if code != 0 {
		t.Fatalf("conform exited %d\nstdout: %s\nstderr: %s", code, stdout, stderr)
	}
	if !strings.Contains(stdout, "PASS") {
		t.Fatalf("expected PASS summary, got: %s", stdout)
	}
	data, err := os.ReadFile(outPath)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(data, []byte(`"checks"`)) || !bytes.Contains(data, []byte(`"anchor"`)) {
		t.Fatal("JSON report is missing checks/anchor fields")
	}
}

// TestGenAnalyzePipeline round-trips a generated trace through a file
// into the analyzer, the canonical two-step workflow of the README.
func TestGenAnalyzePipeline(t *testing.T) {
	trace := filepath.Join(t.TempDir(), "t3.csv")
	_, stderr, code := run(t, "tsubame-gen", "-system", "t3", "-seed", "7", "-out", trace)
	if code != 0 {
		t.Fatalf("gen exited %d: %s", code, stderr)
	}
	stdout, stderr, code := run(t, "tsubame-analyze", "-in", trace, "-parallel", "1")
	if code != 0 {
		t.Fatalf("analyze exited %d: %s", code, stderr)
	}
	if !strings.Contains(stdout, "Tsubame-3") {
		t.Fatalf("analyze output does not mention the system:\n%s", stdout)
	}
}

// TestSweepCLI runs a tiny grid through the sweep driver and pins the
// merged NDJSON report against a committed golden: the evaluator is a
// pure function of (grid, params), so the report bytes are stable across
// machines and worker counts. It also pins the dirty-directory refusal.
func TestSweepCLI(t *testing.T) {
	dir := t.TempDir()
	args := []string{
		"-out", dir, "-systems", "t2", "-ckpt-intervals", "0,24",
		"-spares", "-1,1", "-accuracy", "0,0.5", "-seeds", "2",
		"-horizon", "500", "-parallel", "2",
	}
	stdout, stderr, code := run(t, "tsubame-sweep", args...)
	if code != 0 {
		t.Fatalf("sweep exited %d\nstdout: %s\nstderr: %s", code, stdout, stderr)
	}
	if !strings.Contains(stdout, "Swept 16 cells") {
		t.Fatalf("unexpected sweep summary:\n%s", stdout)
	}
	report, err := os.ReadFile(filepath.Join(dir, "SWEEP_report.ndjson"))
	if err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "sweep.golden")
	if *update {
		if err := os.WriteFile(golden, report, 0o644); err != nil {
			t.Fatal(err)
		}
	} else {
		want, err := os.ReadFile(golden)
		if err != nil {
			t.Fatalf("missing golden (run with -update): %v", err)
		}
		if !bytes.Equal(report, want) {
			t.Fatalf("sweep report diverged from %s (regenerate with -update if intended)\nfirst divergence: %s",
				golden, firstDiff(string(want), string(report)))
		}
	}
	// A second run into the same directory without -resume must refuse
	// rather than interleave two sweeps' shards.
	_, stderr, code = run(t, "tsubame-sweep", args...)
	if code != 1 || !strings.Contains(stderr, "resume") {
		t.Fatalf("dirty-directory re-run: exit %d, stderr %q; want exit 1 mentioning resume", code, stderr)
	}
}

// TestRemediateCLI runs a small policy comparison through the binary and
// pins the JSON report against a committed golden. The comparison is a
// pure function of (flags, seed), so the bytes are stable across
// machines; a second run at a different worker count must reproduce them
// exactly (the determinism contract of the report).
func TestRemediateCLI(t *testing.T) {
	args := []string{
		"-system", "t2", "-seeds", "2", "-horizon", "1000",
		"-accuracy", "0.5", "-spares", "fixed", "-stock", "2",
	}
	stdout, stderr, code := run(t, "tsubame-remediate", args...)
	if code != 0 {
		t.Fatalf("remediate exited %d\nstderr: %s", code, stderr)
	}
	if !strings.Contains(stderr, "winner") {
		t.Fatalf("summary line does not name a winner:\n%s", stderr)
	}
	golden := filepath.Join("testdata", "remediate.golden")
	if *update {
		if err := os.WriteFile(golden, []byte(stdout), 0o644); err != nil {
			t.Fatal(err)
		}
	} else {
		want, err := os.ReadFile(golden)
		if err != nil {
			t.Fatalf("missing golden (run with -update): %v", err)
		}
		if stdout != string(want) {
			t.Fatalf("remediate report diverged from %s (regenerate with -update if intended)\nfirst divergence: %s",
				golden, firstDiff(string(want), stdout))
		}
	}
	again, _, code := run(t, "tsubame-remediate", append(args, "-workers", "3")...)
	if code != 0 {
		t.Fatalf("second remediate run exited %d", code)
	}
	if again != stdout {
		t.Fatal("report bytes differ across worker counts; the comparison is not deterministic")
	}
}

// TestAnonymizeRoundTrip scrubs the committed trace and re-analyzes it:
// the anonymized log must still parse and carry the same record count.
func TestAnonymizeRoundTrip(t *testing.T) {
	scrubbed := filepath.Join(t.TempDir(), "anon.csv")
	_, stderr, code := run(t, "tsubame-anonymize",
		"-in", "testdata/t2-seed42.csv", "-out", scrubbed, "-key", "e2e")
	if code != 0 {
		t.Fatalf("anonymize exited %d: %s", code, stderr)
	}
	orig, err := os.ReadFile("testdata/t2-seed42.csv")
	if err != nil {
		t.Fatal(err)
	}
	anon, err := os.ReadFile(scrubbed)
	if err != nil {
		t.Fatal(err)
	}
	if o, a := bytes.Count(orig, []byte("\n")), bytes.Count(anon, []byte("\n")); o != a {
		t.Fatalf("anonymization changed the record count: %d lines != %d lines", a, o)
	}
	if bytes.Contains(anon, []byte("n0176")) {
		t.Fatal("anonymized trace still contains an original node ID")
	}
}
