// Package tsubame is the public API of the reproduction of "Examining
// Failures and Repairs on Supercomputers with Multi-GPU Compute Nodes"
// (DSN 2021). It re-exports the stable surface of the internal packages:
//
//   - failure-log domain model and serialization (CSV / NDJSON)
//   - calibrated synthetic log generation for Tsubame-2 and Tsubame-3
//     (the real logs are closed data; see DESIGN.md for the calibration)
//   - the RQ1-RQ5 analysis engine and cross-generation comparison
//   - text renderers that regenerate every table and figure of the paper
//   - the failure/repair discrete-event simulator with spare-provisioning,
//     checkpointing, and prediction policies for the paper's
//     operational-implications experiments
//
// Quickstart:
//
//	t2, t3, err := tsubame.GenerateBoth(42)
//	cmp, err := tsubame.Compare(t2, t3)
//	fmt.Print(tsubame.RenderFullReport(cmp))
package tsubame

import (
	"context"
	"fmt"
	"io"

	"repro/internal/conform"
	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/dist"
	"repro/internal/failures"
	"repro/internal/predict"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/spares"
	"repro/internal/synth"
	"repro/internal/system"
	"repro/internal/trace"
	"repro/internal/workload"
)

// Domain types.
type (
	// System identifies a supercomputer generation.
	System = failures.System
	// Failure is one failure-log record.
	Failure = failures.Failure
	// Category is a failure category from Table II.
	Category = failures.Category
	// SoftwareCause is a software root locus from Figure 3.
	SoftwareCause = failures.SoftwareCause
	// Log is a validated, time-sorted failure log.
	Log = failures.Log
	// Machine is a machine model from Table I.
	Machine = system.Machine
	// Study bundles every analysis of one log.
	Study = core.Study
	// Comparison contrasts two generations.
	Comparison = core.Comparison
	// Profile calibrates the synthetic generator.
	Profile = synth.Profile
	// SimConfig parameterizes a failure/repair simulation.
	SimConfig = sim.Config
	// SimResult summarizes a simulation run.
	SimResult = sim.Result
	// FailureProcess is one simulated failure stream.
	FailureProcess = sim.FailureProcess
	// PartsPolicy abstracts spare-part provisioning for the simulator.
	PartsPolicy = sim.PartsPolicy
	// SimTrialStats aggregates a multi-trial simulation run.
	SimTrialStats = sim.TrialStats
	// AnalysisOptions configures an analysis run; Parallelism bounds the
	// analysis worker pool (0 = all cores, 1 = sequential) without
	// affecting results.
	AnalysisOptions = core.Options
	// CheckpointModel parameterizes checkpoint/restart tuning.
	CheckpointModel = sched.CheckpointModel
	// Distribution is a univariate duration distribution (hours).
	Distribution = dist.Distribution
	// WindowMTBF is one point of a rolling reliability series.
	WindowMTBF = core.WindowMTBF
	// SpatialResult quantifies rack/node failure concentration.
	SpatialResult = core.SpatialResult
	// GPUSurvivalResult is the per-card Kaplan-Meier analysis.
	GPUSurvivalResult = core.GPUSurvivalResult
	// ProactiveRecovery parameterizes prediction-initiated repair
	// discounts in the simulator.
	ProactiveRecovery = sim.ProactiveRecovery
	// WorkloadTrace is a synthetic application usage mix.
	WorkloadTrace = workload.Trace
	// WorkloadAttribution tests whether failures follow usage
	// proportionally.
	WorkloadAttribution = workload.Attribution
	// CostPrices and CostPoint parameterize/report the spare-stock cost
	// sweep.
	CostPrices = cost.Prices
	CostPoint  = cost.Point
	// ConformanceReport is the result of a statistical conformance
	// evaluation of a generator profile against the paper's published
	// numbers (see docs/VALIDATION.md).
	ConformanceReport = conform.Report
	// ConformanceOptions tunes the conformance seed set and significance
	// levels; the zero value is the canonical CI configuration.
	ConformanceOptions = conform.Options
)

// The two studied systems.
const (
	Tsubame2 = failures.Tsubame2
	Tsubame3 = failures.Tsubame3
)

// GenerateLog produces the calibrated synthetic failure log of one system.
func GenerateLog(sys System, seed int64) (*Log, error) {
	p, err := synth.ProfileFor(sys)
	if err != nil {
		return nil, err
	}
	return synth.Generate(p, seed)
}

// GenerateBoth produces both generations' logs with one seed.
func GenerateBoth(seed int64) (t2, t3 *Log, err error) {
	return synth.GenerateBoth(seed)
}

// GenerateFromProfile produces a log from a custom calibration profile.
func GenerateFromProfile(p *Profile, seed int64) (*Log, error) {
	return synth.Generate(p, seed)
}

// Tsubame2Profile returns a fresh copy of the built-in Tsubame-2
// calibration for customization.
func Tsubame2Profile() *Profile { return synth.Tsubame2Profile() }

// Tsubame3Profile returns a fresh copy of the built-in Tsubame-3
// calibration for customization.
func Tsubame3Profile() *Profile { return synth.Tsubame3Profile() }

// Analyze runs the full RQ1-RQ5 battery on one log.
func Analyze(log *Log) (*Study, error) { return core.NewStudy(log) }

// AnalyzeParallel runs the full battery with the independent analyses
// fanned out across at most parallelism workers (0 = all cores). The
// resulting Study is identical to Analyze's for any parallelism; see
// docs/PARALLELISM.md for the determinism guarantee.
func AnalyzeParallel(log *Log, parallelism int) (*Study, error) {
	return core.Run(log, core.Options{Parallelism: parallelism})
}

// Compare analyzes two logs and contrasts the generations the way the
// paper contrasts Tsubame-2 and Tsubame-3.
func Compare(oldLog, newLog *Log) (*Comparison, error) { return core.Compare(oldLog, newLog) }

// CompareParallel is Compare with both studies and their analyses fanned
// out across at most parallelism workers; the Comparison is identical to
// Compare's for any parallelism.
func CompareParallel(oldLog, newLog *Log, parallelism int) (*Comparison, error) {
	return core.CompareParallel(oldLog, newLog, core.Options{Parallelism: parallelism})
}

// MachineFor returns the Table I machine model of a system.
func MachineFor(sys System) (Machine, error) { return system.ForSystem(sys) }

// RollingMTBF computes the MTBF over sliding windows of windowDays,
// stepping stepDays, exposing reliability drift within one generation.
func RollingMTBF(log *Log, windowDays, stepDays int) ([]WindowMTBF, error) {
	return core.RollingMTBF(log, windowDays, stepDays)
}

// RollingMTBFParallel is RollingMTBF with the independent window scans
// fanned out across at most parallelism workers; the series is identical
// for any parallelism.
func RollingMTBFParallel(log *Log, windowDays, stepDays, parallelism int) ([]WindowMTBF, error) {
	return core.RollingMTBFParallel(log, windowDays, stepDays, parallelism)
}

// MTBFTrend summarizes a rolling series as late-third over early-third
// mean MTBF (>1 means the system grew more reliable over its life).
func MTBFTrend(series []WindowMTBF) (float64, error) { return core.MTBFTrend(series) }

// GenerateMany produces one log per seed across at most parallelism
// workers; the i-th log is byte-identical to GenerateFromProfile(p,
// seeds[i]).
func GenerateMany(p *Profile, seeds []int64, parallelism int) ([]*Log, error) {
	return synth.GenerateMany(p, seeds, parallelism)
}

// GenerateEach streams GenerateMany: each log is handed to fn (with its
// index into seeds) as soon as it is generated, then released, so peak
// memory is one log per worker instead of one per seed. fn runs
// concurrently from pool workers. Cancelling ctx stops launching new
// seeds and returns the context error; tsubame-gen wires this to SIGINT.
func GenerateEach(ctx context.Context, p *Profile, seeds []int64, parallelism int, fn func(i int, log *Log) error) error {
	return synth.GenerateEach(ctx, p, seeds, parallelism, fn)
}

// Serialization.

// WriteCSV writes a log in the canonical CSV schema.
func WriteCSV(w io.Writer, log *Log) error { return trace.WriteCSV(w, log) }

// ReadCSV parses a log in the canonical CSV schema.
func ReadCSV(r io.Reader) (*Log, error) { return trace.ReadCSV(r) }

// WriteNDJSON writes a log as newline-delimited JSON.
func WriteNDJSON(w io.Writer, log *Log) error { return trace.WriteNDJSON(w, log) }

// ReadNDJSON parses a newline-delimited JSON log.
func ReadNDJSON(r io.Reader) (*Log, error) { return trace.ReadNDJSON(r) }

// Simulation.

// FitProcesses fits per-category failure processes from an analyzed log,
// ready to drive RunSimulation.
func FitProcesses(log *Log, minCount int) ([]FailureProcess, error) {
	return sim.ProcessesFromLog(log, minCount)
}

// RunSimulation executes a failure/repair simulation.
func RunSimulation(cfg SimConfig) (*SimResult, error) { return sim.Run(cfg) }

// RunSimulationTrials executes one simulation per seed across at most
// parallelism workers, returning per-trial results in seed order. Each
// trial is byte-identical to a sequential RunSimulation with that seed.
// parts builds a fresh (stateful) policy per trial; nil means spares are
// always available.
func RunSimulationTrials(cfg SimConfig, seeds []int64, parallelism int, parts func() (PartsPolicy, error)) ([]*SimResult, error) {
	return sim.RunTrials(context.Background(), cfg, seeds, parallelism, parts)
}

// RunSimulationTrialsContext is RunSimulationTrials with cancellation:
// when ctx is cancelled no new trials start, in-flight trials finish,
// and the context error is returned. tsubame-sim wires this to SIGINT.
func RunSimulationTrialsContext(ctx context.Context, cfg SimConfig, seeds []int64, parallelism int, parts func() (PartsPolicy, error)) ([]*SimResult, error) {
	return sim.RunTrials(ctx, cfg, seeds, parallelism, parts)
}

// SummarizeSimulationTrials reduces per-trial simulation results to
// across-trial statistics.
func SummarizeSimulationTrials(results []*SimResult) (SimTrialStats, error) {
	return sim.SummarizeTrials(results)
}

// UnlimitedSpares returns the no-delay parts policy.
func UnlimitedSpares() sim.PartsPolicy { return spares.Unlimited{} }

// FixedSpares returns an S-1 base-stock parts policy.
func FixedSpares(initialStock int, leadTimeHours float64) (sim.PartsPolicy, error) {
	return spares.NewFixedStock(initialStock, leadTimeHours)
}

// PredictiveSpares returns a rate-prediction-driven parts policy using an
// EWMA failure-rate estimator.
func PredictiveSpares(alpha, leadTimeHours, safetyFactor float64) (sim.PartsPolicy, error) {
	rate, err := predict.NewEWMARate(alpha)
	if err != nil {
		return nil, err
	}
	return spares.NewPredictive(rate, leadTimeHours, safetyFactor)
}

// EvaluateLocalityPredictor back-tests the Figure 8 temporal-locality
// predictor against a log's multi-GPU failures.
func EvaluateLocalityPredictor(log *Log, windowHours float64) (predict.Evaluation, error) {
	return predict.EvaluateLocality(log, windowHours)
}

// EvaluatePredictionIntervals back-tests rolling distribution-fit
// prediction intervals for the next failure, reporting calibration
// (observed vs nominal coverage) and sharpness.
func EvaluatePredictionIntervals(log *Log, level float64) (predict.IntervalEvaluation, error) {
	return predict.EvaluateIntervals(log, level)
}

// SimulateCheckpointEfficiency measures checkpoint/restart goodput by
// Monte-Carlo simulation against an arbitrary failure distribution (the
// Efficiency method on CheckpointModel gives the analytic exponential-
// failure answer).
func SimulateCheckpointEfficiency(m CheckpointModel, tau float64, failDist Distribution, horizonHours float64, seed int64) (float64, error) {
	return sched.SimulatedEfficiency(m, tau, failDist, horizonHours, seed)
}

// ExponentialDist returns an exponential duration distribution with the
// given mean (hours).
func ExponentialDist(meanHours float64) (Distribution, error) {
	return dist.NewExponential(meanHours)
}

// WeibullDistFromMean returns a Weibull duration distribution with the
// given shape and mean (hours); shape < 1 gives the heavy-tailed regime
// observed on Tsubame-3.
func WeibullDistFromMean(shape, meanHours float64) (Distribution, error) {
	return dist.WeibullFromMean(shape, meanHours)
}

// GenerateWorkloadTrace synthesizes an application usage mix with a
// Zipf-like skew over the given capacity (node-hours).
func GenerateWorkloadTrace(apps int, totalNodeHours, skew float64, seed int64) (*WorkloadTrace, error) {
	return workload.GenerateTrace(apps, totalNodeHours, skew, seed)
}

// WorkloadCapacity derives a trace capacity from a log's window: fleet
// nodes times span times utilization.
func WorkloadCapacity(log *Log, nodes int, utilization float64) (float64, error) {
	return workload.WindowFor(log, nodes, utilization)
}

// AttributeFailures attributes a log's node-attributable failures to a
// usage trace and tests the paper's proportionality scope note.
// multipliers simulates failure-prone applications (nil for the null
// model).
func AttributeFailures(log *Log, trace *WorkloadTrace, multipliers map[string]float64, seed int64) (*WorkloadAttribution, error) {
	return workload.Attribute(log, trace, multipliers, seed)
}

// CostSweep evaluates spare-stock levels against downtime and holding
// prices, returning the evaluated points and the index of the cheapest.
func CostSweep(cfg cost.SweepConfig) ([]CostPoint, int, error) { return cost.Sweep(cfg) }

// BurstyDist returns a hyperexponential burst/calm inter-arrival mixture
// with the given overall mean: a burstFraction share of gaps averages
// burstMeanHours, the remainder stretches so the total mean holds. It
// models the temporal clustering of failures observed in Figure 8.
func BurstyDist(meanHours, burstFraction, burstMeanHours float64) (Distribution, error) {
	if burstFraction <= 0 || burstFraction >= 1 {
		return nil, fmt.Errorf("tsubame: burst fraction %v outside (0, 1)", burstFraction)
	}
	if !(burstMeanHours > 0) || !(meanHours > burstMeanHours*burstFraction) {
		return nil, fmt.Errorf("tsubame: burst mean %v incompatible with overall mean %v", burstMeanHours, meanHours)
	}
	calmMean := (meanHours - burstFraction*burstMeanHours) / (1 - burstFraction)
	burst, err := dist.NewExponential(burstMeanHours)
	if err != nil {
		return nil, err
	}
	calm, err := dist.NewExponential(calmMean)
	if err != nil {
		return nil, err
	}
	return dist.NewMixture([]dist.Distribution{burst, calm}, []float64{burstFraction, 1 - burstFraction})
}

// ProfileForSystem returns a fresh copy of a system's built-in
// calibration profile.
func ProfileForSystem(sys System) (*Profile, error) { return synth.ProfileFor(sys) }

// WriteProfile serializes a calibration profile as JSON for editing.
func WriteProfile(w io.Writer, p *Profile) error { return synth.WriteProfile(w, p) }

// ReadProfile parses and validates a JSON calibration profile.
func ReadProfile(r io.Reader) (*Profile, error) { return synth.ReadProfile(r) }

// AnonymizeOptions controls the log-scrubbing transform.
type AnonymizeOptions = failures.AnonymizeOptions

// AnonymizeLog scrubs a log for sharing: keyed node pseudonyms, optional
// cause removal and time coarsening (the transform behind the paper's
// business-sensitivity constraints).
func AnonymizeLog(log *Log, opts AnonymizeOptions) (*Log, error) {
	return failures.Anonymize(log, opts)
}

// PeriodDiff contrasts two periods of one system's history with
// statistical backing.
type PeriodDiff = core.PeriodDiff

// DiffPeriods compares a before and after period of the same system:
// failure-rate ratio, Mann-Whitney TBF/TTR shift tests, category drift.
func DiffPeriods(before, after *Log) (*PeriodDiff, error) {
	return core.DiffPeriods(before, after)
}

// TTRSignificanceByCategory runs a one-vs-rest Mann-Whitney test of each
// category's recovery times against the rest of the log — the statistical
// form of Figure 10's "varies significantly across failure types".
func TTRSignificanceByCategory(log *Log, minCount int) ([]core.TTRSignificance, error) {
	return core.TTRSignificanceByCategory(log, minCount)
}

// EvaluateConformance runs the statistical conformance battery of the
// profile's system against it: every check is anchored to a published
// number of the paper, aggregated over the option's seed set. A passing
// report certifies that traces generated from the profile reproduce the
// paper's statistics (docs/VALIDATION.md documents each check).
func EvaluateConformance(ctx context.Context, p *Profile, opts ConformanceOptions) (*ConformanceReport, error) {
	return conform.Evaluate(ctx, p, opts)
}

// ConformanceSeeds returns the canonical conformance seed set 1..n; the
// CI gate uses n = 32.
func ConformanceSeeds(n int) []int64 { return conform.DefaultSeeds(n) }
