package tsubame_test

import (
	"bytes"
	"strings"
	"testing"

	tsubame "repro"
	"repro/internal/cost"
)

// TestFacadeExtensionsEndToEnd drives every extension entry point of the
// public API on one dataset.
func TestFacadeExtensionsEndToEnd(t *testing.T) {
	t2, t3, err := tsubame.GenerateBoth(42)
	if err != nil {
		t.Fatal(err)
	}
	cmp, err := tsubame.Compare(t2, t3)
	if err != nil {
		t.Fatal(err)
	}

	// Rendering surface.
	if !strings.Contains(tsubame.RenderSummary(cmp), "MTBF improvement") {
		t.Error("summary rendering broken")
	}
	if !strings.Contains(tsubame.RenderSpatial(cmp.Old), "rack Gini") {
		t.Error("spatial rendering broken")
	}
	if !strings.Contains(tsubame.RenderSurvival(cmp), "card survival") {
		t.Error("survival rendering broken")
	}
	if !strings.Contains(tsubame.RenderDrift(cmp), "drift") {
		t.Error("drift rendering broken")
	}
	if !strings.Contains(tsubame.RenderMarkdownReport(cmp), "# Failure and repair study") {
		t.Error("markdown rendering broken")
	}

	// Rolling reliability.
	series, err := tsubame.RollingMTBF(t2, 90, 45)
	if err != nil {
		t.Fatal(err)
	}
	trend, err := tsubame.MTBFTrend(series)
	if err != nil {
		t.Fatal(err)
	}
	if trend < 0.5 || trend > 2 {
		t.Errorf("stationary log trend = %v, want near 1", trend)
	}
	if !strings.Contains(tsubame.RenderRollingMTBF("R.", series), "R.") {
		t.Error("rolling rendering broken")
	}

	// Prediction intervals.
	ev, err := tsubame.EvaluatePredictionIntervals(t2, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	if cov := ev.ObservedCoverage(); cov < 0.7 || cov > 0.9 {
		t.Errorf("interval coverage = %v at nominal 0.8", cov)
	}

	// Workload attribution.
	capacity, err := tsubame.WorkloadCapacity(t2, 1408, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	traceMix, err := tsubame.GenerateWorkloadTrace(25, capacity, 1.0, 42)
	if err != nil {
		t.Fatal(err)
	}
	att, err := tsubame.AttributeFailures(t2, traceMix, nil, 42)
	if err != nil {
		t.Fatal(err)
	}
	if att.P < 0.001 {
		t.Errorf("null attribution rejected: p = %v", att.P)
	}

	// Cost sweep.
	procs, err := tsubame.FitProcesses(t2, 10)
	if err != nil {
		t.Fatal(err)
	}
	points, optimal, err := tsubame.CostSweep(cost.SweepConfig{
		Nodes: 1408, GPUsPerNode: 3, Processes: procs, HorizonHours: 2000,
		Seed: 1, LeadTimeHours: 120, Stocks: []int{0, 2},
		Prices: tsubame.CostPrices{DowntimePerNodeHour: 100, HoldingPerPartYear: 5000},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 2 || optimal < 0 || optimal > 1 {
		t.Errorf("cost sweep = %v, optimal %d", points, optimal)
	}

	// Unlimited spares policy through the facade.
	res, err := tsubame.RunSimulation(tsubame.SimConfig{
		Nodes: 100, GPUsPerNode: 3, HorizonHours: 1000,
		Processes: procs, Parts: tsubame.UnlimitedSpares(), Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.MeanRepairWait != 0 {
		t.Errorf("unlimited spares waited %v", res.MeanRepairWait)
	}
}

// TestFacadeProfilesAndAnonymize drives the profile IO and anonymization
// entry points.
func TestFacadeProfilesAndAnonymize(t *testing.T) {
	p, err := tsubame.ProfileForSystem(tsubame.Tsubame3)
	if err != nil || p.Name != "tsubame3" {
		t.Fatalf("ProfileForSystem = %v, %v", p, err)
	}
	if tsubame.Tsubame3Profile().TotalFailures() != p.TotalFailures() {
		t.Error("profile getters disagree")
	}
	var buf bytes.Buffer
	if err := tsubame.WriteProfile(&buf, p); err != nil {
		t.Fatal(err)
	}
	back, err := tsubame.ReadProfile(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.TotalFailures() != p.TotalFailures() {
		t.Error("profile round trip changed totals")
	}

	log, err := tsubame.GenerateFromProfile(back, 5)
	if err != nil {
		t.Fatal(err)
	}
	anon, err := tsubame.AnonymizeLog(log, tsubame.AnonymizeOptions{Key: "k", DropSoftwareCauses: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range anon.Records() {
		if r.SoftwareCause != "" {
			t.Fatal("software cause survived anonymization")
		}
		if r.Node != "" && r.Node[0] != 'x' {
			t.Fatalf("node %q not pseudonymized", r.Node)
		}
	}
}

// TestFacadePeriodDiff drives the period-diff entry point.
func TestFacadePeriodDiff(t *testing.T) {
	t2, _, err := tsubame.GenerateBoth(42)
	if err != nil {
		t.Fatal(err)
	}
	before, after := t2.SplitFraction(0.5)
	d, err := tsubame.DiffPeriods(before, after)
	if err != nil {
		t.Fatal(err)
	}
	if d.BeforeFailures == 0 || d.AfterFailures == 0 {
		t.Errorf("diff = %+v", d)
	}
	if d.Improved(0.001) {
		t.Error("stationary split should not show improvement at alpha 0.001")
	}
}
