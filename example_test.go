package tsubame_test

import (
	"fmt"
	"log"

	tsubame "repro"
)

// ExampleGenerateBoth demonstrates the one-call reproduction entry point:
// both generations' calibrated logs from a single seed.
func ExampleGenerateBoth() {
	t2, t3, err := tsubame.GenerateBoth(42)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(t2.Len(), "Tsubame-2 failures")
	fmt.Println(t3.Len(), "Tsubame-3 failures")
	// Output:
	// 897 Tsubame-2 failures
	// 338 Tsubame-3 failures
}

// ExampleCompare shows the headline cross-generation numbers the paper
// reports: the MTBF improved >4x while the MTTR stood still.
func ExampleCompare() {
	t2, t3, err := tsubame.GenerateBoth(42)
	if err != nil {
		log.Fatal(err)
	}
	cmp, err := tsubame.Compare(t2, t3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("MTBF improvement: %.1fx\n", cmp.MTBFImprovement)
	fmt.Printf("MTTR ratio: %.1f\n", cmp.MTTRRatio)
	// Output:
	// MTBF improvement: 4.7x
	// MTTR ratio: 1.1
}

// ExampleAnalyze runs the RQ battery on one log and reads a single
// figure's data out of the study.
func ExampleAnalyze() {
	t2, err := tsubame.GenerateLog(tsubame.Tsubame2, 42)
	if err != nil {
		log.Fatal(err)
	}
	study, err := tsubame.Analyze(t2)
	if err != nil {
		log.Fatal(err)
	}
	top := study.Breakdown[0]
	fmt.Printf("%s: %.2f%%\n", top.Category, top.Percent)
	// Output:
	// GPU: 44.37%
}

// ExampleCheckpointModel ties the measured MTBF to application-level
// fault-tolerance tuning via the Young/Daly optimum.
func ExampleCheckpointModel() {
	m := tsubame.CheckpointModel{
		CheckpointCostHours: 0.1,
		RestartCostHours:    0.2,
		MTBFHours:           15.3, // Tsubame-2
	}
	fmt.Printf("optimal interval: %.2f h\n", m.OptimalInterval())
	// Output:
	// optimal interval: 1.65 h
}

// ExampleRunSimulation drives the failure/repair simulator with processes
// fitted from an analyzed log — the paper's measurement-to-operations
// loop in four calls.
func ExampleRunSimulation() {
	t2, err := tsubame.GenerateLog(tsubame.Tsubame2, 42)
	if err != nil {
		log.Fatal(err)
	}
	procs, err := tsubame.FitProcesses(t2, 10)
	if err != nil {
		log.Fatal(err)
	}
	res, err := tsubame.RunSimulation(tsubame.SimConfig{
		Nodes:        1408,
		GPUsPerNode:  3,
		HorizonHours: 8760,
		Processes:    procs,
		Seed:         1,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("availability above 99%%: %v\n", res.Availability > 0.99)
	// Output:
	// availability above 99%: true
}

// ExampleAnonymizeLog shows the business-sensitivity transform: node
// identities are pseudonymized under a key before a log leaves the site.
func ExampleAnonymizeLog() {
	t2, err := tsubame.GenerateLog(tsubame.Tsubame2, 42)
	if err != nil {
		log.Fatal(err)
	}
	anon, err := tsubame.AnonymizeLog(t2, tsubame.AnonymizeOptions{Key: "site-secret"})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(anon.Len() == t2.Len(), anon.At(0).Node[:1])
	// Output:
	// true x
}
