package tsubame_test

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"

	tsubame "repro"
	"repro/internal/core"
)

// TestParallelReportByteIdentical is the end-to-end determinism golden:
// the full rendered report — every table and figure of the paper — built
// from a parallel analysis is byte-identical to the sequential one, on
// both the Tsubame-2 and Tsubame-3 synthetic traces.
func TestParallelReportByteIdentical(t *testing.T) {
	t2, t3, err := tsubame.GenerateBoth(42)
	if err != nil {
		t.Fatal(err)
	}
	seq, err := tsubame.Compare(t2, t3)
	if err != nil {
		t.Fatal(err)
	}
	for _, width := range []int{0, 2, 4, 8} {
		par, err := tsubame.CompareParallel(t2, t3, width)
		if err != nil {
			t.Fatalf("width %d: %v", width, err)
		}
		if !reflect.DeepEqual(seq, par) {
			t.Errorf("width %d: comparison structure diverged from sequential", width)
		}
		if a, b := tsubame.RenderFullReport(seq), tsubame.RenderFullReport(par); a != b {
			t.Errorf("width %d: full report not byte-identical (%d vs %d bytes)", width, len(a), len(b))
		}
		if a, b := tsubame.RenderMarkdownReport(seq), tsubame.RenderMarkdownReport(par); a != b {
			t.Errorf("width %d: markdown report not byte-identical", width)
		}
	}
}

// TestIndexedRunMatchesPreIndexGolden is the analysis battery's
// equivalence gate: the committed golden files pin the full rendered
// report for seed 42, so a byte-equal render proves the memoized-index
// battery (internal/index) reproduces the committed sequential output
// exactly — element order, float accumulation order and all. The goldens
// are regenerated (go test ./internal/report/ -run Golden -update)
// whenever the generator's sampling realization intentionally changes.
func TestIndexedRunMatchesPreIndexGolden(t *testing.T) {
	t2, t3, err := tsubame.GenerateBoth(42)
	if err != nil {
		t.Fatal(err)
	}
	cmp, err := tsubame.Compare(t2, t3)
	if err != nil {
		t.Fatal(err)
	}
	want, err := os.ReadFile(filepath.Join("internal", "report", "testdata", "full_report_seed42.txt"))
	if err != nil {
		t.Fatal(err)
	}
	if got := tsubame.RenderFullReport(cmp); got != string(want) {
		t.Errorf("indexed full report diverged from the pre-index golden (%d vs %d bytes)", len(got), len(want))
	}
	wantMD, err := os.ReadFile(filepath.Join("internal", "report", "testdata", "markdown_report_seed42.md"))
	if err != nil {
		t.Fatal(err)
	}
	if got := tsubame.RenderMarkdownReport(cmp); got != string(wantMD) {
		t.Errorf("indexed markdown report diverged from the pre-index golden")
	}
}

// TestStandaloneAnalysesMatchSharedIndex checks the public per-analysis
// wrappers (each building a private index over the log) land on exactly
// the Study fields produced by Run's shared index: sharing one view
// across phases must never change a result.
func TestStandaloneAnalysesMatchSharedIndex(t *testing.T) {
	t2, t3, err := tsubame.GenerateBoth(42)
	if err != nil {
		t.Fatal(err)
	}
	for _, log := range []*tsubame.Log{t2, t3} {
		study, err := tsubame.AnalyzeParallel(log, 0)
		if err != nil {
			t.Fatal(err)
		}
		if got, err := core.CategoryBreakdown(log); err != nil || !reflect.DeepEqual(got, study.Breakdown) {
			t.Errorf("%v: standalone CategoryBreakdown diverges (%v)", log.System(), err)
		}
		if got, err := core.TBFAnalysis(log); err != nil || !reflect.DeepEqual(got, study.TBF) {
			t.Errorf("%v: standalone TBFAnalysis diverges (%v)", log.System(), err)
		}
		if got, err := core.TTRAnalysis(log); err != nil || !reflect.DeepEqual(got, study.TTR) {
			t.Errorf("%v: standalone TTRAnalysis diverges (%v)", log.System(), err)
		}
		if got, err := core.TBFByCategory(log, 5); err != nil || !reflect.DeepEqual(got, study.TBFPerType) {
			t.Errorf("%v: standalone TBFByCategory diverges (%v)", log.System(), err)
		}
		if got, err := core.TTRByCategory(log, 2); err != nil || !reflect.DeepEqual(got, study.TTRPerType) {
			t.Errorf("%v: standalone TTRByCategory diverges (%v)", log.System(), err)
		}
		if got, err := core.MonthlySeasonality(log); err != nil || !reflect.DeepEqual(got, study.Seasonal) {
			t.Errorf("%v: standalone MonthlySeasonality diverges (%v)", log.System(), err)
		}
		if got, err := core.NodeFailureCounts(log); err != nil || !reflect.DeepEqual(got, study.NodeCounts) {
			t.Errorf("%v: standalone NodeFailureCounts diverges (%v)", log.System(), err)
		}
	}
}

// TestAnalyzeParallelMatchesAnalyze pins the single-study entry point on
// both generations.
func TestAnalyzeParallelMatchesAnalyze(t *testing.T) {
	t2, t3, err := tsubame.GenerateBoth(42)
	if err != nil {
		t.Fatal(err)
	}
	for _, log := range []*tsubame.Log{t2, t3} {
		seq, err := tsubame.Analyze(log)
		if err != nil {
			t.Fatal(err)
		}
		par, err := tsubame.AnalyzeParallel(log, 6)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(seq, par) {
			t.Errorf("%v: parallel study diverged from sequential", log.System())
		}
	}
}

// TestGenerateManyMatchesSequential: multi-seed generation must be pure
// in (profile, seed) regardless of pool width.
func TestGenerateManyMatchesSequential(t *testing.T) {
	p := tsubame.Tsubame2Profile()
	seeds := []int64{1, 2, 3, 4, 5, 6}
	par, err := tsubame.GenerateMany(p, seeds, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(par) != len(seeds) {
		t.Fatalf("got %d logs, want %d", len(par), len(seeds))
	}
	for i, seed := range seeds {
		seq, err := tsubame.GenerateFromProfile(p, seed)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(seq, par[i]) {
			t.Errorf("seed %d: parallel generation diverged from sequential", seed)
		}
	}
}

// TestSimulationTrialsMatchSequential: each parallel trial must be
// byte-identical to a lone sequential run with the same seed, including
// under a stateful per-trial parts policy.
func TestSimulationTrialsMatchSequential(t *testing.T) {
	t2, _, err := tsubame.GenerateBoth(42)
	if err != nil {
		t.Fatal(err)
	}
	procs, err := tsubame.FitProcesses(t2, 10)
	if err != nil {
		t.Fatal(err)
	}
	cfg := tsubame.SimConfig{
		Nodes: 256, GPUsPerNode: 3, HorizonHours: 2000,
		Processes: procs, Crews: 4,
	}
	parts := func() (tsubame.PartsPolicy, error) { return tsubame.FixedSpares(1, 72) }
	seeds := []int64{7, 8, 9, 10}
	par, err := tsubame.RunSimulationTrials(cfg, seeds, 4, parts)
	if err != nil {
		t.Fatal(err)
	}
	for i, seed := range seeds {
		trial := cfg
		trial.Seed = seed
		p, err := parts()
		if err != nil {
			t.Fatal(err)
		}
		trial.Parts = p
		seq, err := tsubame.RunSimulation(trial)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(seq, par[i]) {
			t.Errorf("seed %d: parallel trial diverged from sequential", seed)
		}
	}
	st, err := tsubame.SummarizeSimulationTrials(par)
	if err != nil {
		t.Fatal(err)
	}
	if st.Trials != len(seeds) || st.MeanAvailability <= 0 || st.MeanAvailability > 1 {
		t.Errorf("implausible trial stats: %+v", st)
	}
	if st.MinAvailability > st.MeanAvailability || st.MaxAvailability < st.MeanAvailability {
		t.Errorf("availability bounds do not bracket the mean: %+v", st)
	}
}
