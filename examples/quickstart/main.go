// Quickstart: generate the calibrated synthetic failure logs for both
// Tsubame generations, run the paper's analysis battery, and print the
// headline cross-generation findings.
package main

import (
	"fmt"
	"log"

	tsubame "repro"
)

func main() {
	log.SetFlags(0)

	// Every log is deterministic in its seed: rerunning reproduces the
	// identical records and therefore identical figures.
	t2, t3, err := tsubame.GenerateBoth(42)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Generated %d Tsubame-2 failures and %d Tsubame-3 failures.\n\n", t2.Len(), t3.Len())

	cmp, err := tsubame.Compare(t2, t3)
	if err != nil {
		log.Fatal(err)
	}

	// The paper's four headline observations.
	fmt.Printf("1. GPU failures dominate Tsubame-2 (%.1f%%); software dominates Tsubame-3 (%.1f%%).\n",
		topShare(cmp.Old), topShare(cmp.New))
	fmt.Printf("2. System MTBF improved %.1fx (%.1f h -> %.1f h).\n",
		cmp.MTBFImprovement, cmp.Old.TBF.MTBFHours, cmp.New.TBF.MTBFHours)
	fmt.Printf("3. MTTR did not improve: %.1f h vs %.1f h (ratio %.2f).\n",
		cmp.Old.TTR.MTTRHours, cmp.New.TTR.MTTRHours, cmp.MTTRRatio)
	fmt.Printf("4. Useful work per failure-free period grew %.1fx (performance-error-proportionality).\n\n",
		cmp.PEPRatio)

	fmt.Print(tsubame.RenderSummary(cmp))
}

func topShare(s *tsubame.Study) float64 {
	if len(s.Breakdown) == 0 {
		return 0
	}
	return s.Breakdown[0].Percent
}
