// Fieldstudy reproduces the paper end to end: it generates both systems'
// calibrated logs, persists them in the portable CSV schema (the shape an
// operator's real log would take), reads them back, and regenerates every
// table and figure in paper order.
//
// Run with -outdir to keep the CSV logs for inspection.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"

	tsubame "repro"
)

func main() {
	log.SetFlags(0)
	var (
		seed   = flag.Int64("seed", 42, "generator seed")
		outdir = flag.String("outdir", "", "directory for the CSV logs (default: temp, removed afterwards)")
	)
	flag.Parse()

	dir := *outdir
	if dir == "" {
		tmp, err := os.MkdirTemp("", "tsubame-fieldstudy")
		if err != nil {
			log.Fatal(err)
		}
		defer os.RemoveAll(tmp)
		dir = tmp
	} else if err := os.MkdirAll(dir, 0o755); err != nil {
		log.Fatal(err)
	}

	// Stage 1: collect the "field data".
	t2, t3, err := tsubame.GenerateBoth(*seed)
	if err != nil {
		log.Fatal(err)
	}
	t2Path := filepath.Join(dir, "tsubame2.csv")
	t3Path := filepath.Join(dir, "tsubame3.csv")
	if err := writeCSV(t2Path, t2); err != nil {
		log.Fatal(err)
	}
	if err := writeCSV(t3Path, t3); err != nil {
		log.Fatal(err)
	}
	fmt.Fprintf(os.Stderr, "wrote %s (%d records) and %s (%d records)\n", t2Path, t2.Len(), t3Path, t3.Len())

	// Stage 2: the analysis pipeline consumes the serialized logs exactly
	// as it would consume real ones.
	t2Back, err := readCSV(t2Path)
	if err != nil {
		log.Fatal(err)
	}
	t3Back, err := readCSV(t3Path)
	if err != nil {
		log.Fatal(err)
	}
	cmp, err := tsubame.Compare(t2Back, t3Back)
	if err != nil {
		log.Fatal(err)
	}

	// Stage 3: regenerate the paper.
	fmt.Print(tsubame.RenderFullReport(cmp))

	// Stage 4: the predictors the paper's implications call for.
	ev, err := tsubame.EvaluateLocalityPredictor(t2Back, 72)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nTemporal-locality prediction of multi-GPU failures (Figure 8 implication):\n")
	fmt.Printf("  recall %.0f%% with the alarm up %.0f%% of the time (lift %.1fx over random).\n",
		100*ev.Recall(), 100*ev.AlarmFraction(), ev.Lift())
}

func writeCSV(path string, l *tsubame.Log) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := tsubame.WriteCSV(f, l); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func readCSV(path string) (*tsubame.Log, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return tsubame.ReadCSV(f)
}
