// Provisioning explores the paper's RQ5 implication — "the longer
// recovery times highlight the need for appropriate spare provisioning of
// parts" — by simulating a year of Tsubame-2 operations under different
// spare-part policies and crew counts, using failure processes fitted
// from the analyzed log.
package main

import (
	"fmt"
	"log"

	tsubame "repro"
	"repro/internal/cost"
	"repro/internal/sim"
)

func main() {
	log.SetFlags(0)

	failureLog, err := tsubame.GenerateLog(tsubame.Tsubame2, 42)
	if err != nil {
		log.Fatal(err)
	}
	procs, err := tsubame.FitProcesses(failureLog, 10)
	if err != nil {
		log.Fatal(err)
	}
	machine, err := tsubame.MachineFor(tsubame.Tsubame2)
	if err != nil {
		log.Fatal(err)
	}

	type scenario struct {
		name  string
		parts func() (sim.PartsPolicy, error)
	}
	scenarios := []scenario{
		{"unlimited on-site stock", func() (sim.PartsPolicy, error) { return tsubame.UnlimitedSpares(), nil }},
		{"one spare, 72h lead", func() (sim.PartsPolicy, error) { return tsubame.FixedSpares(1, 72) }},
		{"no spares, 72h lead", func() (sim.PartsPolicy, error) { return tsubame.FixedSpares(0, 72) }},
		{"predictive (EWMA-staged)", func() (sim.PartsPolicy, error) { return tsubame.PredictiveSpares(0.3, 72, 1.5) }},
	}

	fmt.Println("Spare-provisioning what-if: Tsubame-2 fitted processes, 8760 simulated hours, 8 crews.")
	fmt.Printf("%-28s %12s %14s %14s\n", "policy", "availability", "mean wait (h)", "restore (h)")
	for _, sc := range scenarios {
		parts, err := sc.parts()
		if err != nil {
			log.Fatal(err)
		}
		res, err := tsubame.RunSimulation(tsubame.SimConfig{
			Nodes:        machine.Nodes,
			GPUsPerNode:  machine.Node.NumGPUs,
			HorizonHours: 8760,
			Processes:    procs,
			Crews:        8,
			Parts:        parts,
			Seed:         1,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-28s %12.4f %14.1f %14.1f\n", sc.name, res.Availability, res.MeanRepairWait, res.MeanTimeToRestore)
	}

	fmt.Println("\nCrew sizing under unlimited spares (queueing is the other MTTR lever):")
	fmt.Printf("%-8s %12s %14s %11s\n", "crews", "availability", "mean wait (h)", "peak queue")
	for _, crews := range []int{2, 4, 8, 16, 0} {
		res, err := tsubame.RunSimulation(tsubame.SimConfig{
			Nodes:        machine.Nodes,
			GPUsPerNode:  machine.Node.NumGPUs,
			HorizonHours: 8760,
			Processes:    procs,
			Crews:        crews,
			Seed:         1,
		})
		if err != nil {
			log.Fatal(err)
		}
		label := fmt.Sprintf("%d", crews)
		if crews == 0 {
			label = "inf"
		}
		fmt.Printf("%-8s %12.4f %14.1f %11d\n", label, res.Availability, res.MeanRepairWait, res.PeakQueue)
	}

	// The paper's closing point: "maintaining balance is the key". Price
	// downtime against inventory holding and find the cost-optimal stock.
	points, optimal, err := tsubame.CostSweep(cost.SweepConfig{
		Nodes:         machine.Nodes,
		GPUsPerNode:   machine.Node.NumGPUs,
		Processes:     procs,
		HorizonHours:  8760,
		Seed:          1,
		LeadTimeHours: 120,
		Stocks:        []int{0, 1, 2, 4, 8, 16, 32},
		Prices:        tsubame.CostPrices{DowntimePerNodeHour: 100, HoldingPerPartYear: 5000},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nSpare-stock cost curve ($100/node-hour downtime, $5k/part-year holding):")
	fmt.Printf("%-8s %12s %14s %14s %14s\n", "stock", "availability", "downtime $", "holding $", "total $")
	for i, pt := range points {
		marker := " "
		if i == optimal {
			marker = "*"
		}
		fmt.Printf("%-7d%s %12.4f %14.0f %14.0f %14.0f\n",
			pt.Stock, marker, pt.Availability, pt.DowntimeCost, pt.HoldingCost, pt.Total)
	}
	fmt.Printf("Cost-optimal stock: %d parts per category.\n", points[optimal].Stock)
}
