// Checkpointing shows how the paper's MTBF findings drive application-
// level fault-tolerance tuning: the optimal checkpoint interval roughly
// doubles from Tsubame-2 (MTBF ~15 h) to Tsubame-3 (MTBF ~72 h), and a
// job tuned for the old machine wastes efficiency on the new one. The
// analytic Young/Daly model is validated against the trace-driven
// simulator, including Tsubame-3's non-exponential (Weibull) regime.
package main

import (
	"fmt"
	"log"

	tsubame "repro"
)

func main() {
	log.SetFlags(0)

	t2, t3, err := tsubame.GenerateBoth(42)
	if err != nil {
		log.Fatal(err)
	}
	s2, err := tsubame.Analyze(t2)
	if err != nil {
		log.Fatal(err)
	}
	s3, err := tsubame.Analyze(t3)
	if err != nil {
		log.Fatal(err)
	}

	const (
		ckptCost    = 0.1 // hours to write a checkpoint
		restartCost = 0.2 // hours to restart after a failure
	)
	m2 := tsubame.CheckpointModel{CheckpointCostHours: ckptCost, RestartCostHours: restartCost, MTBFHours: s2.TBF.MTBFHours}
	m3 := tsubame.CheckpointModel{CheckpointCostHours: ckptCost, RestartCostHours: restartCost, MTBFHours: s3.TBF.MTBFHours}

	fmt.Printf("Measured MTBF: Tsubame-2 %.1f h, Tsubame-3 %.1f h.\n", m2.MTBFHours, m3.MTBFHours)
	fmt.Printf("Young/Daly optimal intervals: %.2f h vs %.2f h.\n\n", m2.OptimalInterval(), m3.OptimalInterval())

	fmt.Println("Analytic efficiency sweep (fraction of wall-clock doing useful work):")
	fmt.Printf("%-14s %12s %12s\n", "interval (h)", "Tsubame-2", "Tsubame-3")
	for _, tau := range []float64{0.5, 1, m2.OptimalInterval(), 2, m3.OptimalInterval(), 6, 12} {
		e2, err := m2.Efficiency(tau)
		if err != nil {
			log.Fatal(err)
		}
		e3, err := m3.Efficiency(tau)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-14.2f %12.4f %12.4f\n", tau, e2, e3)
	}

	// Validation against simulation, using each system's fitted TBF
	// shape: exponential on Tsubame-2, heavy-tailed Weibull on Tsubame-3.
	fail2, err := tsubame.ExponentialDist(m2.MTBFHours)
	if err != nil {
		log.Fatal(err)
	}
	fail3, err := tsubame.WeibullDistFromMean(0.74, m3.MTBFHours)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nSimulated vs analytic at each system's optimum (500k simulated hours):")
	for _, row := range []struct {
		name string
		m    tsubame.CheckpointModel
		d    tsubame.Distribution
	}{
		{"Tsubame-2 (exponential)", m2, fail2},
		{"Tsubame-3 (Weibull k=0.74)", m3, fail3},
	} {
		tau := row.m.OptimalInterval()
		analytic, err := row.m.Efficiency(tau)
		if err != nil {
			log.Fatal(err)
		}
		simulated, err := tsubame.SimulateCheckpointEfficiency(row.m, tau, row.d, 500000, 42)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-28s tau=%.2f h: analytic %.4f, simulated %.4f\n", row.name, tau, analytic, simulated)
	}

	// The cross-generation mistake: running Tsubame-2's interval on
	// Tsubame-3.
	stale, err := m3.Efficiency(m2.OptimalInterval())
	if err != nil {
		log.Fatal(err)
	}
	tuned, err := m3.Efficiency(m3.OptimalInterval())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nKeeping Tsubame-2's interval on Tsubame-3 costs %.2f%% efficiency (%.4f -> %.4f).\n",
		100*(tuned-stale), stale, tuned)
}
