// Reliability runs the extension analyses that go beyond the paper's
// figures: per-GPU-card Kaplan-Meier survival (the card-lifetime view of
// the paper's reference [11]), rack-level failure concentration (the
// related-work observation that rack non-uniformity carries over to
// multi-GPU nodes), and rolling MTBF across each system's life.
package main

import (
	"fmt"
	"log"

	tsubame "repro"
)

func main() {
	log.SetFlags(0)

	t2, t3, err := tsubame.GenerateBoth(42)
	if err != nil {
		log.Fatal(err)
	}
	cmp, err := tsubame.Compare(t2, t3)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Print(tsubame.RenderSurvival(cmp))
	fmt.Println()
	fmt.Print(tsubame.RenderSpatial(cmp.Old))
	fmt.Println()
	fmt.Print(tsubame.RenderSpatial(cmp.New))
	fmt.Println()

	for _, entry := range []struct {
		name string
		l    *tsubame.Log
	}{
		{"Tsubame-2", t2},
		{"Tsubame-3", t3},
	} {
		series, err := tsubame.RollingMTBF(entry.l, 90, 45)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Print(tsubame.RenderRollingMTBF(
			fmt.Sprintf("Rolling 90-day MTBF on %s (extension).", entry.name), series))
		fmt.Println()
	}

	// The survival gap restates the paper's headline GPU reliability
	// improvement as a per-card probability.
	if cmp.Old.Survival != nil && cmp.New.Survival != nil {
		fmt.Printf("A Tsubame-3 card's first-year no-failure probability is %.1f%% vs %.1f%% on Tsubame-2.\n\n",
			100*cmp.New.Survival.SurvivalAtOneYear, 100*cmp.Old.Survival.SurvivalAtOneYear)
	}

	// Honest prediction intervals for the next failure (the actionable
	// form of "leveraging failure prediction"): a leakage-free back-test
	// of rolling distribution fits.
	for _, level := range []float64{0.5, 0.8, 0.9} {
		ev, err := tsubame.EvaluatePredictionIntervals(t2, level)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("Next-failure %2.0f%% interval on Tsubame-2: observed coverage %.1f%% over %d predictions, mean width %.1f h.\n",
			100*level, 100*ev.ObservedCoverage(), ev.Predictions, ev.MeanWidthHours)
	}
}
