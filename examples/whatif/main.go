// Whatif runs a counterfactual the paper's RQ3 discussion invites: the
// collapse of simultaneous multi-GPU failures on Tsubame-3 (92.6% single-
// GPU vs Tsubame-2's 30%) is credited to operational practice — health
// tests and proactive replacements — not hardware. What would Tsubame-3
// have looked like *without* those practices? We clone the Tsubame-3
// calibration, give it Tsubame-2's multi-GPU involvement behaviour, and
// re-run the analyses.
package main

import (
	"fmt"
	"log"

	tsubame "repro"
)

func main() {
	log.SetFlags(0)

	actual, err := tsubame.GenerateLog(tsubame.Tsubame3, 42)
	if err != nil {
		log.Fatal(err)
	}

	// Counterfactual calibration: Tsubame-2's involvement mix (extended
	// with a 4-GPU tail) and its stronger temporal clustering.
	profile := tsubame.Tsubame3Profile()
	profile.Name = "tsubame3-no-health-tests"
	profile.GPUInvolvementPMF = []float64{0.3044, 0.3478, 0.2478, 0.10}
	profile.ClusterFraction = 0.55
	counterfactual, err := tsubame.GenerateFromProfile(profile, 42)
	if err != nil {
		log.Fatal(err)
	}

	actualStudy, err := tsubame.Analyze(actual)
	if err != nil {
		log.Fatal(err)
	}
	cfStudy, err := tsubame.Analyze(counterfactual)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Counterfactual: Tsubame-3 without the health-test/proactive-replacement practices.")
	fmt.Println()
	fmt.Printf("%-28s %12s %16s\n", "", "actual", "counterfactual")
	actualMulti := multiPercent(actualStudy)
	cfMulti := multiPercent(cfStudy)
	fmt.Printf("%-28s %11.1f%% %15.1f%%\n", "multi-GPU failure share", actualMulti, cfMulti)
	fmt.Printf("%-28s %12d %16d\n", "4-GPU (whole-node) failures",
		involvementCount(actualStudy, 4), involvementCount(cfStudy, 4))

	// Blast radius for co-located single-GPU jobs (RQ3 implication).
	fmt.Println("\nExpected co-located jobs killed per GPU failure (4 jobs per node):")
	fmt.Printf("  actual:         %.2f\n", meanInvolvement(actualStudy))
	fmt.Printf("  counterfactual: %.2f\n", meanInvolvement(cfStudy))

	// Clustering of multi-GPU failures (Figure 8 view).
	if actualStudy.MultiGPU != nil && cfStudy.MultiGPU != nil {
		fmt.Println("\nMulti-GPU temporal clustering:")
		fmt.Printf("  actual:         %d events, clustering score %.2f\n",
			actualStudy.MultiGPU.MultiEvents, actualStudy.MultiGPU.ClusteringScore)
		fmt.Printf("  counterfactual: %d events, clustering score %.2f\n",
			cfStudy.MultiGPU.MultiEvents, cfStudy.MultiGPU.ClusteringScore)
	}

	fmt.Println("\nReading: the operational practices, not the NVLink-era hardware alone,")
	fmt.Println("are what keep a multi-GPU node from failing as a unit.")
}

func multiPercent(s *tsubame.Study) float64 {
	var p float64
	for _, row := range s.Involvement {
		if row.GPUs >= 2 {
			p += row.Percent
		}
	}
	return p
}

func involvementCount(s *tsubame.Study, gpus int) int {
	for _, row := range s.Involvement {
		if row.GPUs == gpus {
			return row.Count
		}
	}
	return 0
}

// meanInvolvement is the expected cards (and, on a fully co-located node,
// jobs) hit per GPU failure.
func meanInvolvement(s *tsubame.Study) float64 {
	var total, events float64
	for _, row := range s.Involvement {
		total += float64(row.GPUs * row.Count)
		events += float64(row.Count)
	}
	if events == 0 {
		return 0
	}
	return total / events
}
