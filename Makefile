# Make targets mirror the CI workflow (.github/workflows/ci.yml): the
# `ci` target reproduces every blocking CI step locally, so a green
# `make ci` predicts a green PR.

# Recipes pipe `go test` through `tee` to keep artifacts; without
# pipefail the pipeline's exit status is tee's, and a panicking
# benchmark run would exit 0. Bash with pipefail makes every pipe
# stage's failure fatal (bench-smoke-selftest proves it stays fixed).
SHELL := /bin/bash
.SHELLFLAGS := -eu -o pipefail -c

GO ?= go

# The tier-1 perf benchmark set guarded by the regression gate
# (bench_perf_test.go; every benchmark there is named BenchmarkPerf*).
PERF_BENCH = ^BenchmarkPerf
PERF_BENCHFLAGS = -bench='$(PERF_BENCH)' -benchtime=5x -count=3 -run='^$$'

# bench-smoke knobs: the selftest narrows the package set to the
# build-tag-gated failure injection and redirects the artifact.
BENCH_PKGS ?= ./...
BENCH_OUT ?= BENCH_ci.json
BENCH_TAGS ?=

.PHONY: build test race bench bench-baseline bench-check bench-smoke bench-smoke-selftest sweep-smoke serve-smoke convert-smoke remediate-smoke profile-gen fuzz-smoke conform cover vet lint ci clean

## build: compile every package and command
build:
	$(GO) build ./...

## vet: static analysis via go vet
vet:
	$(GO) vet ./...

## test: the tier-1 test suite
test:
	$(GO) test ./...

## race: the full test suite under the race detector (certifies the
## parallel analysis engine)
race:
	$(GO) test -race ./...

## bench: full benchmark battery with memory stats (regenerates the
## paper's tables/figures as metrics; slow)
bench:
	$(GO) test -bench=. -benchmem -run='^$$' ./...

## bench-baseline: run the tier-1 perf set and record it as the local
## regression baseline (BENCH_baseline.json). Refresh after intentional
## perf changes, on the machine you develop on.
bench-baseline:
	$(GO) test $(PERF_BENCHFLAGS) . | tee BENCH_perf.txt
	$(GO) run ./cmd/tsubame-benchcheck record -in BENCH_perf.txt -out BENCH_baseline.json

## bench-check: run the tier-1 perf set and fail on any benchmark more
## than 15% slower than BENCH_baseline.json. ns/op is machine-dependent,
## so compare against a baseline recorded on the same machine; CI runs
## the hermetic variant (merge-base vs head on one runner).
bench-check:
	$(GO) test $(PERF_BENCHFLAGS) . | tee BENCH_perf.txt
	$(GO) run ./cmd/tsubame-benchcheck check -baseline BENCH_baseline.json -current BENCH_perf.txt -threshold 15

## bench-smoke: every benchmark exactly once, machine-readable; a
## panicking or hanging benchmark fails this target (pipefail above —
## tee must not mask go test's exit). Produces BENCH_ci.json for the CI
## artifact.
bench-smoke:
	$(GO) test $(BENCH_TAGS) -bench=. -benchtime=1x -run='^$$' -json $(BENCH_PKGS) | tee $(BENCH_OUT)

## bench-smoke-selftest: prove the pipe-masking fix — inject a panicking
## benchmark (build tag benchfailinject) and require bench-smoke to
## fail. Guards the "panicking benchmark fails the PR" CI promise.
bench-smoke-selftest:
	@if $(MAKE) bench-smoke BENCH_TAGS='-tags benchfailinject' BENCH_PKGS=./internal/sim/ BENCH_OUT=/dev/null >/dev/null 2>&1; then \
		echo "bench-smoke-selftest: FAIL — injected benchmark panic was swallowed (pipe masking is back)"; \
		exit 1; \
	else \
		echo "bench-smoke-selftest: ok — injected benchmark failure fails bench-smoke"; \
	fi

## sweep-smoke: kill-and-resume determinism of tsubame-sweep — run a
## tiny grid to completion, rerun it with a SIGKILL mid-flight, resume,
## and require the merged report to be byte-identical.
sweep-smoke:
	./scripts/sweep_smoke.sh

## serve-smoke: black-box smoke of the tsubame-serve HTTP service — boot
## the binary, stream the committed seed-42 trace in two chunks with
## queries between them, and require the fully-ingested analyze/digest
## responses to match the batch CLIs' goldens byte for byte
## (docs/SERVICE.md).
serve-smoke:
	$(GO) test ./e2e -run '^TestServeCLI' -count=1 -v

## profile-gen: CPU and allocation pprof profiles of the end-to-end 100k
## generate+encode pipeline (BenchmarkPerfGenerateEncode100k). Inspect
## with `go tool pprof PROFILE_gen_cpu.out`; CI uploads both profiles as
## an artifact next to the BENCH_delta table.
profile-gen:
	$(GO) test -bench='^BenchmarkPerfGenerateEncode100k$$' -benchtime=20x -run='^$$' \
		-cpuprofile PROFILE_gen_cpu.out -memprofile PROFILE_gen_mem.out .

## fuzz-smoke: a minute of coverage-guided fuzzing on the trace
## parsers, 15 s per target. Go permits one -fuzz target per invocation,
## so the targets run back to back.
fuzz-smoke:
	$(GO) test -fuzz='^FuzzReadCSV$$' -fuzztime=15s -run='^$$' ./internal/trace/
	$(GO) test -fuzz='^FuzzReadNDJSON$$' -fuzztime=15s -run='^$$' ./internal/trace/
	$(GO) test -fuzz='^FuzzParseNDJSONRecord$$' -fuzztime=15s -run='^$$' ./internal/trace/
	$(GO) test -fuzz='^FuzzReadTSBC$$' -fuzztime=15s -run='^$$' ./internal/trace/

## remediate-smoke: CLI contracts of the closed-loop policy comparison —
## the canonical tsubame-remediate report must match the committed e2e
## golden, reproduce byte-identically across runs and worker counts, and
## reject bad flags with exit 2 (docs/REMEDIATION.md).
remediate-smoke:
	./scripts/remediate_smoke.sh

## convert-smoke: lossless-conversion gate for the columnar data plane —
## generate a 100k-record trace, convert NDJSON -> .tsbc -> NDJSON, and
## require byte identity, plus a streaming .tsbc digest byte-identical
## to the batch CSV digest (docs/TRACE-FORMAT.md). Set CONVERT_SMOKE_DIR
## to keep the intermediate files for inspection on failure.
convert-smoke:
	$(GO) test ./e2e -run '^TestConvertSmoke' -count=1 -v

## conform: the statistical conformance gate — generate both systems
## across the canonical 32-seed set and check every published statistic
## of the paper (docs/VALIDATION.md). Fails on calibration drift.
conform:
	$(GO) run ./cmd/tsubame-conform -system both -v -out CONFORM_report.json

## cover: the tier-1 suite with a coverage profile; prints the summary
## and leaves COVER_profile.out for `go tool cover -html`.
cover:
	$(GO) test -coverprofile=COVER_profile.out -covermode=atomic ./...
	$(GO) tool cover -func=COVER_profile.out | tail -1

## lint: golangci-lint if installed (blocking in CI; optional locally)
lint:
	@command -v golangci-lint >/dev/null 2>&1 \
		&& golangci-lint run ./... \
		|| echo "golangci-lint not installed; skipping (CI runs it as a blocking job)"

## ci: every blocking CI step, in CI's order
ci: build vet test race conform bench-smoke bench-smoke-selftest sweep-smoke serve-smoke convert-smoke remediate-smoke fuzz-smoke

clean:
	rm -f BENCH_ci.json BENCH_perf.txt PROFILE_gen_cpu.out PROFILE_gen_mem.out CONFORM_report.json COVER_profile.out repro.test
	rm -rf SWEEP_smoke.d REMEDIATE_smoke.d
