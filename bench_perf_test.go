// Tier-1 performance benchmark set: the benchmarks guarded by the
// regression gate (make bench-baseline / make bench-check, backed by
// cmd/tsubame-benchcheck and BENCH_baseline.json). Every benchmark here
// is named BenchmarkPerf* so the gate can select exactly this set with
// -bench='^BenchmarkPerf'.
//
// The workload is a 100k-record synthetic Tsubame-3 log: the published
// profile with every exact count scaled by perfScale (296 x 338 =
// 100,048 records), the fleet scaled to match so the per-node
// failure-count distribution stays on the paper's PMF. The scaled log is
// generated once per process and shared; benchmarks that need mutable
// input copy it.
package tsubame_test

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"runtime"
	"sort"
	"strconv"
	"sync"
	"testing"
	"time"

	tsubame "repro"
	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/failures"
	"repro/internal/index"
	"repro/internal/remediate"
	"repro/internal/serve"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/sweep"
	"repro/internal/synth"
	"repro/internal/textreport"
	"repro/internal/trace"
)

// perfScale multiplies every exact count of the Tsubame-3 profile:
// 338 records x 296 = 100,048, the "100k-record log" of the perf
// acceptance criteria.
const perfScale = 296

// scaledTsubame3Profile returns the Tsubame-3 calibration with every
// exact count multiplied by factor. Categories and SoftwareCauses scale
// by the same integer, so the profile's cause-sum invariant holds by
// construction; NodeCount scales too so the affected-node draw (which
// needs roughly total/E[failures per node] distinct nodes) still fits
// the fleet.
func scaledTsubame3Profile(factor int) *synth.Profile {
	p := synth.Tsubame3Profile()
	for i := range p.Categories {
		p.Categories[i].Count *= factor
	}
	for i := range p.SoftwareCauses {
		p.SoftwareCauses[i].Count *= factor
	}
	p.NodeCount *= factor
	p.SoftwareOnMultiNodes *= factor
	return p
}

// perf100k lazily generates the shared 100k-record log. Generation is
// deterministic in (profile, benchSeed) and costs a few seconds, so it
// runs once per test process.
var perf100k struct {
	once sync.Once
	log  *failures.Log
	err  error
}

func perfLog(b *testing.B) *failures.Log {
	b.Helper()
	perf100k.once.Do(func() {
		perf100k.log, perf100k.err = synth.Generate(scaledTsubame3Profile(perfScale), benchSeed)
	})
	if perf100k.err != nil {
		b.Fatal(perf100k.err)
	}
	return perf100k.log
}

// BenchmarkPerfIndexedStudy100k is the headline acceptance benchmark:
// the full RQ1-RQ5 battery (core.Run through the shared memoized index)
// over the 100k-record log.
func BenchmarkPerfIndexedStudy100k(b *testing.B) {
	log := perfLog(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tsubame.Analyze(log); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(log.Len()), "records")
}

// BenchmarkPerfIndexedStudy100kParallel fans the same battery out across
// every core; the phases share one index, so the parallel speedup now
// comes on top of the single-sort savings rather than re-deriving the
// same partitions per phase.
func BenchmarkPerfIndexedStudy100kParallel(b *testing.B) {
	log := perfLog(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tsubame.AnalyzeParallel(log, 0); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPerfIndexBuild100k measures a cold index: one View built and
// every facet the analysis battery touches forced exactly once. This is
// the fixed cost the memoization amortizes across phases.
func BenchmarkPerfIndexBuild100k(b *testing.B) {
	log := perfLog(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ix := index.New(log)
		ix.Records()
		ix.NodeCounts()
		ix.Nodes()
		ix.GPURecords()
		ix.SortedInterarrivalHours()
		ix.SortedRecoveryHours()
		ix.SortedHardwareRecoveryHours()
		ix.SortedSoftwareRecoveryHours()
		ix.SortedMonthlyRecoveryHours()
		ix.MonthlyCounts()
		for cat := range ix.CategoryCounts() {
			ix.SortedCategoryGaps(cat)
			ix.SortedCategoryRecovery(cat)
		}
	}
}

// BenchmarkPerfSummarize100k measures the single-sort descriptive
// summary on an unsorted 100k sample (the allocation-regression test in
// internal/stats pins its allocation count).
func BenchmarkPerfSummarize100k(b *testing.B) {
	hours := perfLog(b).RecoveryHours()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := stats.Summarize(hours); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPerfQuantilesSorted100k measures the multi-quantile sorted
// fast path on the shared recovery arena: no sort, no per-call copy.
func BenchmarkPerfQuantilesSorted100k(b *testing.B) {
	sorted := index.New(perfLog(b)).SortedRecoveryHours()
	ps := []float64{0.05, 0.25, 0.50, 0.75, 0.95, 0.99}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if qs := stats.QuantilesSorted(sorted, ps); len(qs) != len(ps) {
			b.Fatal("wrong quantile count")
		}
	}
}

// BenchmarkPerfFitAll100k measures the fused distribution-fitting sweep
// from an unsorted sample: one sort, then every family's log-likelihood
// and KS statistic in a single pass each.
func BenchmarkPerfFitAll100k(b *testing.B) {
	hours := perfLog(b).RecoveryHours()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := dist.FitAll(hours); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPerfFitAllSorted100k measures the same sweep entered through
// a pre-sorted arena: the sort drops out entirely.
func BenchmarkPerfFitAllSorted100k(b *testing.B) {
	sorted := index.New(perfLog(b)).SortedRecoveryHours()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := dist.FitAllSorted(sorted); err != nil {
			b.Fatal(err)
		}
	}
}

// perfCSV renders the 100k log to CSV once for the reader benchmarks.
var perfCSV struct {
	once sync.Once
	data []byte
	err  error
}

func perfCSVBytes(b *testing.B) []byte {
	b.Helper()
	log := perfLog(b)
	perfCSV.once.Do(func() {
		var buf bytes.Buffer
		perfCSV.err = trace.WriteCSV(&buf, log)
		perfCSV.data = buf.Bytes()
	})
	if perfCSV.err != nil {
		b.Fatal(perfCSV.err)
	}
	return perfCSV.data
}

// BenchmarkPerfWriteCSV100k measures the serialization path (reused row
// slice, At-indexed iteration — no Records() copy).
func BenchmarkPerfWriteCSV100k(b *testing.B) {
	log := perfLog(b)
	var buf bytes.Buffer
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf.Reset()
		if err := trace.WriteCSV(&buf, log); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(int64(buf.Len()))
}

// BenchmarkPerfReadCSV100k measures ingestion through the pooled slurp
// buffer, line-count pre-sizing, and encoding/csv row reuse.
func BenchmarkPerfReadCSV100k(b *testing.B) {
	data := perfCSVBytes(b)
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := trace.ReadCSV(bytes.NewReader(data)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPerfGenerate100k measures the synthesis pipeline alone: six
// forked substreams, alias-table GPU-slot draws, and the pooled Fenwick
// affected-node sampler over the scaled fleet. This is where the old
// linear CDF scans dominated (the node draw rescanned the whole fleet's
// weight vector per pick).
func BenchmarkPerfGenerate100k(b *testing.B) {
	p := scaledTsubame3Profile(perfScale)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := synth.Generate(p, benchSeed); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPerfGenerateEncode100k is the headline end-to-end data-plane
// benchmark of the perf acceptance criteria: generate the 100k-record
// log and encode it to NDJSON, sampler and encoder costs combined.
func BenchmarkPerfGenerateEncode100k(b *testing.B) {
	p := scaledTsubame3Profile(perfScale)
	var buf bytes.Buffer
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf.Reset()
		log, err := synth.Generate(p, benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		if err := trace.WriteNDJSON(&buf, log); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(int64(buf.Len()))
}

// BenchmarkPerfGenerateMany measures the multi-seed fan-out: eight
// unscaled Tsubame-3 logs across every core, each byte-identical to its
// sequential Generate.
func BenchmarkPerfGenerateMany(b *testing.B) {
	p := synth.Tsubame3Profile()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := synth.GenerateMany(p, benchSeeds, 0); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPerfWriteNDJSON100k measures the append-based NDJSON encoder
// (pooled buffers, no reflection; byte-identical to the json.Encoder
// path it replaced).
func BenchmarkPerfWriteNDJSON100k(b *testing.B) {
	log := perfLog(b)
	var buf bytes.Buffer
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf.Reset()
		if err := trace.WriteNDJSON(&buf, log); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(int64(buf.Len()))
}

// perfTSBC renders the 100k log to columnar .tsbc once for the reader
// benchmark.
var perfTSBC struct {
	once sync.Once
	data []byte
	err  error
}

func perfTSBCBytes(b *testing.B) []byte {
	b.Helper()
	log := perfLog(b)
	perfTSBC.once.Do(func() {
		var buf bytes.Buffer
		perfTSBC.err = trace.WriteTSBC(&buf, log)
		perfTSBC.data = buf.Bytes()
	})
	if perfTSBC.err != nil {
		b.Fatal(perfTSBC.err)
	}
	return perfTSBC.data
}

// BenchmarkPerfWriteTSBC100k measures the columnar encoder: dictionary
// building, per-block delta/varint columns, and checksumming.
func BenchmarkPerfWriteTSBC100k(b *testing.B) {
	log := perfLog(b)
	var buf bytes.Buffer
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf.Reset()
		if err := trace.WriteTSBC(&buf, log); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(int64(buf.Len()))
}

// BenchmarkPerfReadTSBC100k is the columnar twin of the CSV/NDJSON
// reader benchmarks. The perf acceptance criterion pins it at >= 2x
// faster than BenchmarkPerfReadNDJSON100k: no text parsing, no
// per-record timestamp formatting, and the dictionary decode amortizes
// across a block.
func BenchmarkPerfReadTSBC100k(b *testing.B) {
	data := perfTSBCBytes(b)
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := trace.ReadTSBC(bytes.NewReader(data)); err != nil {
			b.Fatal(err)
		}
	}
}

// perfScale1M scales the Tsubame-3 profile to 338 x 2960 = 1,000,480
// records, the "1M-record trace" of the streaming-digest acceptance
// criteria.
const perfScale1M = 2960

// perf1M lazily renders a 1M-record trace to .tsbc, shared by the
// streaming-digest benchmark. Only the encoded bytes are retained; the
// materialized log is released so the benchmark's memory use is the
// stream's own.
var perf1M struct {
	once sync.Once
	data []byte
	from time.Time
	err  error
}

func perf1MTSBC(b *testing.B) ([]byte, time.Time) {
	b.Helper()
	perf1M.once.Do(func() {
		log, err := synth.Generate(scaledTsubame3Profile(perfScale1M), benchSeed)
		if err != nil {
			perf1M.err = err
			return
		}
		var buf bytes.Buffer
		if perf1M.err = trace.WriteTSBC(&buf, log); perf1M.err != nil {
			return
		}
		perf1M.data = buf.Bytes()
		_, end, _ := log.Window()
		perf1M.from = end.AddDate(0, 0, -30)
	})
	if perf1M.err != nil {
		b.Fatal(perf1M.err)
	}
	return perf1M.data, perf1M.from
}

// streamDigestAllocBudget bounds the bytes BenchmarkPerfStreamDigest1M
// may allocate per digest: block arenas are reused across the ~123
// blocks, so the total stays around a couple of megabytes — orders of
// magnitude under the >100 MB that materializing the 1M-record log
// costs. A failure here means the stream started holding more than one
// block's worth of state.
const streamDigestAllocBudget = 32 << 20

// BenchmarkPerfStreamDigest1M gates the constant-memory analysis plane:
// a full operations digest (with the quantile sketches) over a
// 1M-record .tsbc trace through the block streamer, asserting the
// bounded-allocation contract rather than just reporting it.
func BenchmarkPerfStreamDigest1M(b *testing.B) {
	data, from := perf1MTSBC(b)
	b.SetBytes(int64(len(data)))
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		br, err := trace.NewBlockReader(bytes.NewReader(data))
		if err != nil {
			b.Fatal(err)
		}
		n, err := textreport.StreamDigest(io.Discard, br, from, 30, core.DigestOptions{Quantiles: true})
		if err != nil {
			b.Fatal(err)
		}
		if n == 0 {
			b.Fatal("stream digest saw no period records")
		}
	}
	b.StopTimer()
	runtime.ReadMemStats(&after)
	perOp := (after.TotalAlloc - before.TotalAlloc) / uint64(b.N)
	if perOp > streamDigestAllocBudget {
		b.Fatalf("stream digest allocated %d bytes/op, budget %d", perOp, streamDigestAllocBudget)
	}
	b.ReportMetric(float64(perOp)/(1<<20), "MB_alloc/op")
}

// BenchmarkPerfSimTrials measures the multi-trial simulator fan-out with
// the per-process involvement alias tables, eight fitted-process trials
// across every core.
func BenchmarkPerfSimTrials(b *testing.B) {
	cfg := benchTrialConfig(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sim.RunTrials(context.Background(), cfg, benchSeeds, 0, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// fleetProcs lazily fits the failure processes driving the fleet-scale
// simulation benchmarks from the shared 100k-record log: ~2.6 arrivals
// per hour across categories, the event rate of a 100k-node fleet.
var fleetProcs struct {
	once  sync.Once
	procs []sim.FailureProcess
	err   error
}

func fleetProcesses(b *testing.B) []sim.FailureProcess {
	b.Helper()
	log := perfLog(b)
	fleetProcs.once.Do(func() {
		fleetProcs.procs, fleetProcs.err = sim.ProcessesFromLog(log, 10)
	})
	if fleetProcs.err != nil {
		b.Fatal(fleetProcs.err)
	}
	return fleetProcs.procs
}

// BenchmarkPerfFleetSim100k is the fleet-scale acceptance benchmark of
// the calendar-queue engine: one 100k-node, decade-horizon (87,600 h)
// trial over processes fitted from the 100k-record log — hundreds of
// thousands of events through the indexed calendar queue, the pooled
// event records, and the incremental downtime tracker, with a bounded
// repair-crew pool queueing repairs behind real contention.
func BenchmarkPerfFleetSim100k(b *testing.B) {
	procs := fleetProcesses(b)
	cfg := sim.Config{
		Nodes:        100_000,
		NodesPerRack: 36,
		GPUsPerNode:  4,
		HorizonHours: 87_600,
		Processes:    procs,
		Crews:        1024,
		Seed:         benchSeed,
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := sim.Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if res.Failures == 0 {
			b.Fatal("fleet trial saw no failures")
		}
	}
}

// BenchmarkPerfRemediate100k is the closed-loop twin of the fleet
// benchmark: the same 100k-node decade-horizon fleet, but every failure
// is answered by the remediation engine — cordon, crew-bounded drain,
// reset-with-retries, escalation to replacement against a finite spare
// pool, and verification — with a 0.5-accuracy oracle layering predicted
// failures and false alarms on top. This is the per-node state-machine
// and cordon-queue hot path under real event pressure.
func BenchmarkPerfRemediate100k(b *testing.B) {
	procs := fleetProcesses(b)
	cfg := remediate.Config{
		Nodes:        100_000,
		NodesPerRack: 36,
		HorizonHours: 87_600,
		Processes:    procs,
		Crews:        1024,
		Policy:       remediate.PredictionInitiated{},
		Steps:        remediate.DefaultSteps(),
		Predictor: remediate.Predictor{
			Accuracy:           0.5,
			LeadTimeHours:      24,
			FalseAlarmsPerYear: 12,
		},
		Seed: benchSeed,
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := remediate.Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if res.Remediations == 0 {
			b.Fatal("closed-loop trial completed no remediations")
		}
	}
}

// BenchmarkPerfSweepGrid gates the scenario-sweep driver end to end: a
// 16-cell checkpoint x spares x accuracy grid at a one-year horizon,
// through process fitting, the worker pool, sharded NDJSON persistence,
// and the deterministic merge.
func BenchmarkPerfSweepGrid(b *testing.B) {
	grid := sweep.Grid{
		Systems:       []string{"t2"},
		CkptIntervals: []float64{0, 24},
		Spares:        []int{-1, 1},
		Accuracies:    []float64{0, 0.5},
		Seeds:         []int64{benchSeed, benchSeed + 1},
	}
	params := sweep.Params{
		HorizonHours:        8760,
		Crews:               8,
		LeadTimeHours:       72,
		AlarmWindowHours:    24,
		CheckpointCostHours: 0.1,
		RestartCostHours:    0.2,
		LogSeed:             benchSeed,
		MinCount:            10,
	}
	root := b.TempDir()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out := filepath.Join(root, strconv.Itoa(i))
		if _, err := sweep.Run(context.Background(), sweep.RunnerConfig{
			Grid: grid, Params: params, OutDir: out, Parallelism: 0,
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPerfReadNDJSON100k is the NDJSON twin of the CSV reader
// benchmark, through the same pooled path.
func BenchmarkPerfReadNDJSON100k(b *testing.B) {
	data := perfNDJSONBytes(b)
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := trace.ReadNDJSON(bytes.NewReader(data)); err != nil {
			b.Fatal(err)
		}
	}
}

// perfNDJSON renders the 100k log to NDJSON once, shared by the reader
// and serve benchmarks.
var perfNDJSON struct {
	once sync.Once
	data []byte
	err  error
}

func perfNDJSONBytes(b *testing.B) []byte {
	b.Helper()
	log := perfLog(b)
	perfNDJSON.once.Do(func() {
		var buf bytes.Buffer
		perfNDJSON.err = trace.WriteNDJSON(&buf, log)
		perfNDJSON.data = buf.Bytes()
	})
	if perfNDJSON.err != nil {
		b.Fatal(perfNDJSON.err)
	}
	return perfNDJSON.data
}

// perfNDJSONChunks splits the rendered 100k trace into n line-aligned
// ingest chunks.
func perfNDJSONChunks(b *testing.B, n int) [][]byte {
	b.Helper()
	lines := bytes.SplitAfter(perfNDJSONBytes(b), []byte("\n"))
	chunks := make([][]byte, 0, n)
	per := (len(lines) + n - 1) / n
	for at := 0; at < len(lines); at += per {
		end := at + per
		if end > len(lines) {
			end = len(lines)
		}
		chunks = append(chunks, bytes.Join(lines[at:end], nil))
	}
	return chunks
}

func perfServeHandler(b *testing.B) http.Handler {
	b.Helper()
	srv, err := serve.New(serve.Config{System: failures.Tsubame3})
	if err != nil {
		b.Fatal(err)
	}
	return srv.Handler()
}

func perfServeDo(h http.Handler, method, path string, body []byte) *httptest.ResponseRecorder {
	var r io.Reader
	if body != nil {
		r = bytes.NewReader(body)
	}
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(method, path, r))
	return rec
}

// BenchmarkPerfServeIngest100k measures the streaming-ingest plane of
// tsubame-serve: the 100k-record NDJSON trace through the HTTP handler
// in eight chunks, each publishing a new epoch (parse, validate,
// re-sort, snapshot swap) on a fresh server per iteration.
func BenchmarkPerfServeIngest100k(b *testing.B) {
	chunks := perfNDJSONChunks(b, 8)
	b.SetBytes(int64(len(perfNDJSONBytes(b))))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h := perfServeHandler(b)
		for _, chunk := range chunks {
			if rec := perfServeDo(h, http.MethodPost, "/v1/ingest", chunk); rec.Code != http.StatusOK {
				b.Fatalf("ingest: status %d: %s", rec.Code, rec.Body)
			}
		}
	}
	b.ReportMetric(float64(perfLog(b).Len()), "records")
}

// BenchmarkPerfServeQueryCached100k measures the steady-state query hot
// path: a repeated digest over a fully-ingested 100k-record store, every
// request after the first a cache hit on the current epoch. This is the
// latency a dashboard polling an idle server sees.
func BenchmarkPerfServeQueryCached100k(b *testing.B) {
	h := perfServeHandler(b)
	if rec := perfServeDo(h, http.MethodPost, "/v1/ingest", perfNDJSONBytes(b)); rec.Code != http.StatusOK {
		b.Fatalf("ingest: status %d: %s", rec.Code, rec.Body)
	}
	const path = "/v1/digest?days=30"
	if rec := perfServeDo(h, http.MethodGet, path, nil); rec.Code != http.StatusOK {
		b.Fatalf("warm-up query: status %d: %s", rec.Code, rec.Body)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if rec := perfServeDo(h, http.MethodGet, path, nil); rec.Code != http.StatusOK {
			b.Fatalf("query: status %d: %s", rec.Code, rec.Body)
		}
	}
}

// BenchmarkPerfServeMixed100k is the service's load benchmark: eight
// concurrent query clients against sustained chunked ingest of the
// 100k-record trace. Each iteration replays the full scenario on a
// fresh server; per-query wall latencies are aggregated across clients
// and iterations and the 99th percentile is reported as p99_ms — the
// number the epoch-snapshot design exists to keep flat while ingest
// re-sorts ever-larger logs.
func BenchmarkPerfServeMixed100k(b *testing.B) {
	chunks := perfNDJSONChunks(b, 8)
	const clients = 8
	paths := []string{"/v1/digest?days=30", "/v1/digest?days=90", "/v1/status", "/v1/diff"}
	var mu sync.Mutex
	var latencies []time.Duration
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h := perfServeHandler(b)
		if rec := perfServeDo(h, http.MethodPost, "/v1/ingest", chunks[0]); rec.Code != http.StatusOK {
			b.Fatalf("seed ingest: status %d: %s", rec.Code, rec.Body)
		}
		stop := make(chan struct{})
		var wg sync.WaitGroup
		for c := 0; c < clients; c++ {
			wg.Add(1)
			go func(path string) {
				defer wg.Done()
				var lats []time.Duration
				for {
					select {
					case <-stop:
						mu.Lock()
						latencies = append(latencies, lats...)
						mu.Unlock()
						return
					default:
					}
					start := time.Now()
					rec := perfServeDo(h, http.MethodGet, path, nil)
					if rec.Code != http.StatusOK {
						panic(fmt.Sprintf("query %s: status %d: %s", path, rec.Code, rec.Body))
					}
					lats = append(lats, time.Since(start))
				}
			}(paths[c%len(paths)])
		}
		for _, chunk := range chunks[1:] {
			if rec := perfServeDo(h, http.MethodPost, "/v1/ingest", chunk); rec.Code != http.StatusOK {
				b.Fatalf("ingest: status %d: %s", rec.Code, rec.Body)
			}
		}
		close(stop)
		wg.Wait()
	}
	b.StopTimer()
	if len(latencies) > 0 {
		sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
		p99 := latencies[len(latencies)*99/100]
		if len(latencies)*99/100 >= len(latencies) {
			p99 = latencies[len(latencies)-1]
		}
		b.ReportMetric(float64(p99.Nanoseconds())/1e6, "p99_ms")
		b.ReportMetric(float64(len(latencies))/float64(b.N), "queries/op")
	}
}

// BenchmarkPerfServeIngestSteady is the steady-state ingest gate: a
// server already holding the 100k-record log, held there by MaxRecords
// retention, absorbing an endless stream of small tail batches — the
// live-monitoring shape tsubame-serve is built for. Each op renders one
// 512-record batch (the O(batch) client side) and POSTs it through the
// handler: NDJSON parse, batch-only validate+sort, tail-merge into the
// committed log, eviction of the displaced head, epoch publish. The
// property this gate defends is that per-batch cost is a function of
// the batch alone, not of the 100k resident records — the old append
// path revalidated and re-sorted the entire log on every batch.
func BenchmarkPerfServeIngestSteady(b *testing.B) {
	resident := perfLog(b)
	srv, err := serve.New(serve.Config{System: failures.Tsubame3, MaxRecords: resident.Len()})
	if err != nil {
		b.Fatal(err)
	}
	h := srv.Handler()
	if rec := perfServeDo(h, http.MethodPost, "/v1/ingest", perfNDJSONBytes(b)); rec.Code != http.StatusOK {
		b.Fatalf("seed ingest: status %d: %s", rec.Code, rec.Body)
	}

	const batchSize = 512
	template := resident.At(resident.Len() - 1)
	cursor := template.Time
	nextID := 1_000_000
	recs := make([]failures.Failure, batchSize)
	var buf bytes.Buffer
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := range recs {
			r := template
			cursor = cursor.Add(time.Minute)
			nextID++
			r.Time, r.ID = cursor, nextID
			recs[j] = r
		}
		batch, err := failures.NewLog(failures.Tsubame3, recs)
		if err != nil {
			b.Fatal(err)
		}
		buf.Reset()
		if err := trace.WriteNDJSON(&buf, batch); err != nil {
			b.Fatal(err)
		}
		if rec := perfServeDo(h, http.MethodPost, "/v1/ingest", buf.Bytes()); rec.Code != http.StatusOK {
			b.Fatalf("ingest: status %d: %s", rec.Code, rec.Body)
		}
	}
	b.ReportMetric(batchSize, "records/op")
}
