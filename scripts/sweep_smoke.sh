#!/usr/bin/env bash
# sweep-smoke: prove tsubame-sweep's kill-and-resume determinism end to
# end. A reference sweep runs a tiny grid to completion; a second sweep
# of the same grid is SIGKILLed mid-flight (no cleanup, the worst case),
# resumed with -resume, and its merged report must be byte-identical to
# the reference. CI uploads the report as the SWEEP_report artifact.
set -euo pipefail

cd "$(dirname "$0")/.."

OUT=${SWEEP_SMOKE_DIR:-SWEEP_smoke.d}
BIN="$OUT/tsubame-sweep"
# 1024 cells at a decade horizon: a few seconds of work, long enough
# that the SIGKILL below lands while cells are still being computed.
GRID=(-systems t2,t3 -ckpt-intervals 0,24 -spares -1,1 -accuracy 0,0.5
      -seeds 64 -horizon 87600 -parallel 2)

rm -rf "$OUT"
mkdir -p "$OUT"
go build -o "$BIN" ./cmd/tsubame-sweep

echo "sweep-smoke: reference (uninterrupted) run"
"$BIN" "${GRID[@]}" -out "$OUT/ref"

echo "sweep-smoke: interrupted run (SIGKILL mid-flight)"
"$BIN" "${GRID[@]}" -out "$OUT/killed" &
pid=$!
# Let it finish some cells but not the grid, then kill it hard: no
# signal handler, no deferred cleanup, torn trailing lines included.
for _ in $(seq 1 100); do
    sleep 0.05
    [ -s "$OUT/killed/cells.manifest" ] && break
done
kill -KILL "$pid" 2>/dev/null || true
wait "$pid" 2>/dev/null || true

done_cells=$(wc -l < "$OUT/killed/cells.manifest" 2>/dev/null || echo 0)
total_cells=$(wc -l < "$OUT/ref/SWEEP_report.ndjson")
echo "sweep-smoke: killed after $done_cells/$total_cells cells"
if [ "$done_cells" -ge "$total_cells" ]; then
    echo "sweep-smoke: WARNING - kill landed after completion; resume path below still verifies idempotence"
fi
if [ -e "$OUT/killed/SWEEP_report.ndjson" ] && [ "$done_cells" -lt "$total_cells" ]; then
    echo "sweep-smoke: FAIL - interrupted run left a final report"
    exit 1
fi

echo "sweep-smoke: resuming"
"$BIN" "${GRID[@]}" -out "$OUT/killed" -resume

if ! cmp "$OUT/ref/SWEEP_report.ndjson" "$OUT/killed/SWEEP_report.ndjson"; then
    echo "sweep-smoke: FAIL - resumed report differs from uninterrupted run"
    exit 1
fi
cp "$OUT/killed/SWEEP_report.ndjson" "$OUT/SWEEP_report.ndjson"
echo "sweep-smoke: ok - resumed report is byte-identical ($total_cells cells)"
