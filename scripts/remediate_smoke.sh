#!/usr/bin/env bash
# remediate-smoke: prove the closed-loop policy comparison's CLI
# contracts end to end. The canonical small comparison must (1) match
# the committed e2e golden byte for byte, (2) reproduce itself exactly
# across runs and worker counts, and (3) reject bad flags with the
# conventional usage-error exit status 2. CI uploads the report as the
# REMEDIATE_report artifact.
set -euo pipefail

cd "$(dirname "$0")/.."

OUT=${REMEDIATE_SMOKE_DIR:-REMEDIATE_smoke.d}
BIN="$OUT/tsubame-remediate"
# The canonical comparison: the same flags TestRemediateCLI pins, so the
# committed golden serves both gates.
FLAGS=(-system t2 -seeds 2 -horizon 1000 -accuracy 0.5 -spares fixed -stock 2)
GOLDEN=e2e/testdata/remediate.golden

rm -rf "$OUT"
mkdir -p "$OUT"
go build -o "$BIN" ./cmd/tsubame-remediate

echo "remediate-smoke: reference run"
"$BIN" "${FLAGS[@]}" > "$OUT/report.json"

if ! cmp -s "$GOLDEN" "$OUT/report.json"; then
    echo "remediate-smoke: FAIL - report differs from $GOLDEN"
    echo "  (regenerate with: go test ./e2e -run TestRemediateCLI -update)"
    exit 1
fi

echo "remediate-smoke: second run at -workers 3 must be byte-identical"
"$BIN" "${FLAGS[@]}" -workers 3 > "$OUT/report2.json"
if ! cmp -s "$OUT/report.json" "$OUT/report2.json"; then
    echo "remediate-smoke: FAIL - report is not deterministic across runs/workers"
    exit 1
fi

echo "remediate-smoke: bad flags must exit 2 with usage"
for bad in "-seeds 0" "-policies paint" "-spares hope" "-accuracy 1"; do
    # shellcheck disable=SC2086  # word-splitting the flag pair is intended
    if "$BIN" $bad > /dev/null 2> "$OUT/stderr.txt"; then
        echo "remediate-smoke: FAIL - '$bad' exited 0"
        exit 1
    elif [ $? -ne 2 ]; then
        echo "remediate-smoke: FAIL - '$bad' did not exit 2"
        exit 1
    fi
    if ! grep -qi usage "$OUT/stderr.txt"; then
        echo "remediate-smoke: FAIL - '$bad' printed no usage"
        exit 1
    fi
done

echo "remediate-smoke: ok - golden match, deterministic, exit-2 contract holds"
