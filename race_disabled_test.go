//go:build !race

package tsubame_test

const raceEnabled = false
