package tsubame_test

import (
	"bytes"
	"strings"
	"testing"

	tsubame "repro"
)

// TestEndToEndReproduction is the integration test of the whole pipeline:
// generate -> serialize -> parse -> analyze -> compare -> render, checking
// the paper's headline claims hold through every layer.
func TestEndToEndReproduction(t *testing.T) {
	t2, t3, err := tsubame.GenerateBoth(42)
	if err != nil {
		t.Fatal(err)
	}

	// Round-trip both logs through the CSV schema.
	var buf bytes.Buffer
	if err := tsubame.WriteCSV(&buf, t2); err != nil {
		t.Fatal(err)
	}
	t2back, err := tsubame.ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	if err := tsubame.WriteNDJSON(&buf, t3); err != nil {
		t.Fatal(err)
	}
	t3back, err := tsubame.ReadNDJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}

	cmp, err := tsubame.Compare(t2back, t3back)
	if err != nil {
		t.Fatal(err)
	}
	if cmp.MTBFImprovement < 4 || cmp.MTBFImprovement > 6 {
		t.Errorf("MTBF improvement = %.2fx, want ~4.7x", cmp.MTBFImprovement)
	}
	if cmp.MTTRRatio < 0.85 || cmp.MTTRRatio > 1.2 {
		t.Errorf("MTTR ratio = %.2f, want ~1", cmp.MTTRRatio)
	}

	rendered := tsubame.RenderFullReport(cmp)
	for _, want := range []string{
		"Table I.", "Table II.", "Table III.",
		"Figure 2.", "Figure 3.", "Figure 4.", "Figure 5.", "Figure 6.",
		"Figure 7.", "Figure 8.", "Figure 9.", "Figure 10.", "Figure 11.",
		"Figure 12.", "Performance-error-proportionality",
		"Cross-generation summary",
	} {
		if !strings.Contains(rendered, want) {
			t.Errorf("full report missing %q", want)
		}
	}
}

func TestGenerateLogPerSystem(t *testing.T) {
	for _, sys := range []tsubame.System{tsubame.Tsubame2, tsubame.Tsubame3} {
		log, err := tsubame.GenerateLog(sys, 1)
		if err != nil {
			t.Fatal(err)
		}
		if log.System() != sys {
			t.Errorf("GenerateLog(%v) produced %v", sys, log.System())
		}
	}
	if _, err := tsubame.GenerateLog(tsubame.System(0), 1); err == nil {
		t.Error("invalid system should fail")
	}
}

func TestGenerateFromCustomProfile(t *testing.T) {
	p := tsubame.Tsubame2Profile()
	p.Categories = p.Categories[:5] // smaller custom mix
	log, err := tsubame.GenerateFromProfile(p, 3)
	if err != nil {
		t.Fatal(err)
	}
	if log.Len() != p.TotalFailures() {
		t.Errorf("custom profile log has %d records, want %d", log.Len(), p.TotalFailures())
	}
	// The built-in profile getters return fresh copies: mutating p must
	// not have touched the canonical calibration.
	if tsubame.Tsubame2Profile().TotalFailures() != 897 {
		t.Error("profile mutation leaked into the built-in calibration")
	}
}

func TestMachineFor(t *testing.T) {
	m, err := tsubame.MachineFor(tsubame.Tsubame3)
	if err != nil || m.Nodes != 540 {
		t.Errorf("MachineFor = %+v, %v", m, err)
	}
}

func TestRenderFigureDispatch(t *testing.T) {
	t2, t3, err := tsubame.GenerateBoth(42)
	if err != nil {
		t.Fatal(err)
	}
	cmp, err := tsubame.Compare(t2, t3)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range []int{2, 3, 4, 5, 7, 8, 10, 11, 12} {
		if tsubame.RenderFigure(n, cmp.New) == "" {
			t.Errorf("RenderFigure(%d) empty", n)
		}
	}
	if tsubame.RenderFigure(99, cmp.New) != "" {
		t.Error("unknown figure should render empty")
	}
	for _, n := range []int{6, 9} {
		if tsubame.RenderComparisonFigure(n, cmp) == "" {
			t.Errorf("RenderComparisonFigure(%d) empty", n)
		}
	}
	if tsubame.RenderComparisonFigure(2, cmp) != "" {
		t.Error("single-system figure via comparison renderer should be empty")
	}
	if tsubame.RenderTableI() == "" || tsubame.RenderTableII() == "" ||
		tsubame.RenderTableIII(cmp) == "" || tsubame.RenderPEP(cmp) == "" {
		t.Error("table renderers returned empty output")
	}
}

func TestSimulationFacade(t *testing.T) {
	log, err := tsubame.GenerateLog(tsubame.Tsubame2, 42)
	if err != nil {
		t.Fatal(err)
	}
	procs, err := tsubame.FitProcesses(log, 10)
	if err != nil {
		t.Fatal(err)
	}
	parts, err := tsubame.PredictiveSpares(0.3, 72, 1.5)
	if err != nil {
		t.Fatal(err)
	}
	res, err := tsubame.RunSimulation(tsubame.SimConfig{
		Nodes: 1408, GPUsPerNode: 3, HorizonHours: 4000, Processes: procs, Crews: 8,
		Parts: parts, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Failures == 0 || res.Availability <= 0.5 {
		t.Errorf("simulation result = %+v", res)
	}
	if _, err := tsubame.FixedSpares(-1, 10); err == nil {
		t.Error("invalid fixed spares should fail")
	}
	if _, err := tsubame.PredictiveSpares(5, 10, 1); err == nil {
		t.Error("invalid alpha should fail")
	}
}

func TestCheckpointFacade(t *testing.T) {
	m := tsubame.CheckpointModel{CheckpointCostHours: 0.1, RestartCostHours: 0.2, MTBFHours: 15.3}
	d, err := tsubame.ExponentialDist(m.MTBFHours)
	if err != nil {
		t.Fatal(err)
	}
	eff, err := tsubame.SimulateCheckpointEfficiency(m, m.OptimalInterval(), d, 50000, 1)
	if err != nil {
		t.Fatal(err)
	}
	if eff < 0.8 || eff > 0.95 {
		t.Errorf("simulated efficiency = %v, want ~0.88", eff)
	}
	if _, err := tsubame.WeibullDistFromMean(0.74, 72.6); err != nil {
		t.Errorf("WeibullDistFromMean: %v", err)
	}
}

func TestBurstyDist(t *testing.T) {
	d, err := tsubame.BurstyDist(72.6, 0.3, 5)
	if err != nil {
		t.Fatal(err)
	}
	if m := d.Mean(); m < 72.5 || m > 72.7 {
		t.Errorf("bursty mean = %v, want 72.6", m)
	}
	// Hyperexponential: variance strictly above the exponential's.
	if d.Var() <= 72.6*72.6 {
		t.Errorf("bursty variance = %v, want above exponential %v", d.Var(), 72.6*72.6)
	}
	for _, bad := range []struct{ mean, frac, burst float64 }{
		{72, 0, 5}, {72, 1, 5}, {72, 0.5, 0}, {5, 0.9, 10},
	} {
		if _, err := tsubame.BurstyDist(bad.mean, bad.frac, bad.burst); err == nil {
			t.Errorf("BurstyDist(%v) should fail", bad)
		}
	}
}

func TestLocalityPredictorFacade(t *testing.T) {
	log, err := tsubame.GenerateLog(tsubame.Tsubame2, 42)
	if err != nil {
		t.Fatal(err)
	}
	ev, err := tsubame.EvaluateLocalityPredictor(log, 72)
	if err != nil {
		t.Fatal(err)
	}
	if ev.Recall() <= 0 || ev.Recall() > 1 {
		t.Errorf("recall = %v", ev.Recall())
	}
}
